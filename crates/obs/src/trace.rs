//! Bounded structured trace ring for batch-level pipeline events.
//!
//! The ring records one [`TraceEvent`] per *batch-level* pipeline step
//! (ingest call, reorder release, shard dispatch, assembly round, merge
//! emit, checkpoint quiesce) — never per event row — so the mutex inside
//! is taken a few times per batch, not millions of times per second.
//! When full, the oldest events are evicted and counted in `dropped`, so
//! a snapshot always says how much history it is missing.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Event-time timestamp (mirrors `zstream_events::Ts`; this crate is a
/// dependency-free leaf, so the alias is local).
pub type Ts = u64;

/// What kind of pipeline step a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A batch entered the runtime (`ingest_*` call).
    Ingest,
    /// The reorder stage released buffered rows past its frontier.
    ReorderRelease,
    /// A batch (or row selection) was dispatched to a worker shard.
    ShardDispatch,
    /// An engine ran a non-idle assembly round (§4.3 batch-iterator).
    AssemblyRound,
    /// The ordered merger emitted final matches.
    MergeEmit,
    /// A checkpoint quiesce round-trip completed.
    CheckpointQuiesce,
    /// A plan replan decision was taken (details in the decision log).
    Replan,
    /// A query lifecycle transition (create / pause / resume / drop, and
    /// per-shard retirement acknowledgements).
    Lifecycle,
}

impl TraceKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceKind::Ingest => "ingest",
            TraceKind::ReorderRelease => "reorder_release",
            TraceKind::ShardDispatch => "shard_dispatch",
            TraceKind::AssemblyRound => "assembly_round",
            TraceKind::MergeEmit => "merge_emit",
            TraceKind::CheckpointQuiesce => "checkpoint_quiesce",
            TraceKind::Replan => "replan",
            TraceKind::Lifecycle => "lifecycle",
        }
    }
}

/// One batch-level pipeline event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event-time position (watermark / frontier / batch high ts) when the
    /// step happened — not wall clock, so traces are comparable across
    /// runs of the same stream.
    pub ts: Ts,
    /// Worker shard, when the step is shard-scoped.
    pub shard: Option<u32>,
    /// Registered query (e.g. `"q0"`), when the step is query-scoped.
    pub query: Option<String>,
    pub kind: TraceKind,
    /// Free-form `key=value` detail, small and allocation-light.
    pub payload: String,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[ts {:>8}] {:<18}", self.ts, self.kind.as_str())?;
        if let Some(s) = self.shard {
            write!(f, " shard={s}")?;
        }
        if let Some(q) = &self.query {
            write!(f, " query={q}")?;
        }
        if !self.payload.is_empty() {
            write!(f, " {}", self.payload)?;
        }
        Ok(())
    }
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// The bounded trace ring. Cheap to record into (one short mutex per
/// batch-level step), cheap to snapshot (clones at most `capacity`
/// events).
pub struct TraceRing {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing").field("capacity", &self.capacity).finish()
    }
}

/// Default ring capacity: enough for the recent history of a busy
/// pipeline without unbounded growth.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

impl Default for TraceRing {
    fn default() -> TraceRing {
        TraceRing::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRing {
    pub fn with_capacity(capacity: usize) -> TraceRing {
        TraceRing {
            capacity,
            ring: Mutex::new(Ring { buf: VecDeque::with_capacity(capacity.min(64)), dropped: 0 }),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(ev);
    }

    /// Convenience constructor + record.
    pub fn emit(
        &self,
        ts: Ts,
        shard: Option<u32>,
        query: Option<&str>,
        kind: TraceKind,
        payload: String,
    ) {
        self.record(TraceEvent { ts, shard, query: query.map(str::to_string), kind, payload });
    }

    /// `(events oldest-first, number evicted)`.
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let ring = self.ring.lock().expect("trace ring poisoned");
        (ring.buf.iter().cloned().collect(), ring.dropped)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: Ts) -> TraceEvent {
        TraceEvent { ts, shard: None, query: None, kind: TraceKind::Ingest, payload: String::new() }
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let ring = TraceRing::with_capacity(3);
        for ts in 0..5 {
            ring.record(ev(ts));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(events.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        let ring = TraceRing::with_capacity(0);
        ring.record(ev(1));
        let (events, dropped) = ring.snapshot();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(TraceKind::ReorderRelease.as_str(), "reorder_release");
        assert_eq!(TraceKind::CheckpointQuiesce.as_str(), "checkpoint_quiesce");
    }
}
