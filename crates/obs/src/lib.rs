//! # zstream-obs — observability for the ZStream pipeline
//!
//! A dependency-free leaf crate providing the three observability planes
//! the rest of the workspace wires into:
//!
//! * a **metric registry** ([`Registry`]) — monotonic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed [`Histogram`]s, registered by name +
//!   label set. Registration appends a fresh atomic cell per worker
//!   thread (cold path, short mutex); the hot path is relaxed atomic
//!   adds on thread-private cells, folded only at scrape time — ingest
//!   never contends with a scrape;
//! * a bounded **structured trace ring** ([`TraceRing`]) of batch-level
//!   pipeline events ([`TraceEvent`]): ingest, reorder release, shard
//!   dispatch, assembly round, merge emit, checkpoint quiesce;
//! * a **planner decision log** ([`DecisionLog`]) recording every §5.3
//!   replan — sampled statistics, cost estimates per candidate plan, the
//!   chosen operator tree, and back-filled post-hoc actuals, making
//!   estimate-vs-actual error a first-class series.
//!
//! [`Obs`] bundles the three planes behind one `Arc`-shareable hub;
//! [`Obs::snapshot`] produces an [`ObsSnapshot`] that renders to JSON
//! ([`ObsSnapshot::to_json`]) or Prometheus text
//! ([`ObsSnapshot::to_prometheus`]), both with deterministic ordering.
//!
//! Observability state is deliberately **not** part of checkpoints: a
//! restored runtime starts its counters from zero (see the runtime's
//! checkpoint docs for the rationale).

mod decision;
mod export;
mod hist;
mod registry;
mod trace;

pub use decision::{
    DecisionLog, PlanCandidate, ReplanDecision, StatSeries, DEFAULT_DECISION_CAPACITY,
};
pub use export::{json_escape, prom_escape, ObsSnapshot};
pub use hist::{bucket_index, bucket_upper_bound, HistSnapshot, Histogram, NUM_BUCKETS};
pub use registry::{
    labels, Counter, Gauge, GaugeFold, Labels, MetricSample, MetricValue, Registry,
};
pub use trace::{TraceEvent, TraceKind, TraceRing, Ts, DEFAULT_TRACE_CAPACITY};

/// The observability hub: one per runtime (or standalone engine),
/// shared by `Arc` across the control thread, worker shards, and any
/// scraping thread.
///
/// The trace ring is itself behind an `Arc` so worker threads can hold a
/// handle to the ring alone (e.g. [`TraceRing`] inside a shard's engine
/// instruments) without referencing the whole hub.
#[derive(Debug, Default)]
pub struct Obs {
    /// Counters, gauges, histograms.
    pub metrics: Registry,
    /// Batch-level pipeline trace.
    pub trace: std::sync::Arc<TraceRing>,
    /// Replan decisions with estimate-vs-actual series.
    pub decisions: DecisionLog,
}

impl Obs {
    pub fn new() -> Obs {
        Obs::default()
    }

    /// A cheap point-in-time scrape of all three planes. Callable from
    /// any thread mid-stream: metric cells are read with atomic loads,
    /// the trace ring and decision log each take one short mutex — no
    /// shard is paused or quiesced.
    pub fn snapshot(&self) -> ObsSnapshot {
        let metrics = self.metrics.scrape();
        let (trace, trace_dropped) = self.trace.snapshot();
        let (decisions, decisions_dropped) = self.decisions.snapshot();
        ObsSnapshot { metrics, trace, trace_dropped, decisions, decisions_dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_snapshot_covers_all_planes() {
        let obs = Obs::new();
        obs.metrics.counter("c", labels(&[])).inc();
        obs.trace.emit(1, None, None, TraceKind::Ingest, "rows=1".into());
        obs.decisions.record(ReplanDecision {
            seq: 0,
            query: "q0".into(),
            at: 1,
            drift: 0.0,
            measured: vec![],
            candidates: vec![],
            switched: false,
            actuals: None,
        });
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("c"), 1);
        assert_eq!(snap.trace.len(), 1);
        assert_eq!(snap.decisions.len(), 1);
    }

    #[test]
    fn concurrent_scrape_during_writes_is_safe() {
        use std::sync::Arc;
        let obs = Arc::new(Obs::new());
        let c = obs.metrics.counter("c", labels(&[]));
        let writer = {
            let h = obs.metrics.histogram("h", labels(&[]));
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    c.inc();
                    h.observe(i);
                }
            })
        };
        let mut last = 0;
        for _ in 0..100 {
            let snap = obs.snapshot();
            let v = snap.counter_total("c");
            assert!(v >= last, "counter must be monotone across scrapes");
            last = v;
        }
        writer.join().unwrap();
        assert_eq!(obs.snapshot().counter_total("c"), 50_000);
    }
}
