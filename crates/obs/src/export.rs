//! Scrape snapshots and their JSON / Prometheus-text renderings.
//!
//! Both renderings are **deterministic** for a given snapshot: metrics
//! are emitted in registry order (sorted by name, then labels), histogram
//! buckets ascending, map keys in insertion order of the sorted label
//! set. That makes the output diffable and lets CI pin the exported
//! schema (names / label keys / types) as a golden fixture.
//!
//! The JSON renderer emits one metric, trace event, or decision per line
//! so the schema can be validated with a line scanner — no JSON parser
//! dependency needed downstream.

use crate::decision::ReplanDecision;
use crate::hist::{bucket_upper_bound, HistSnapshot};
use crate::registry::{Labels, MetricSample, MetricValue};
use crate::trace::TraceEvent;

/// A point-in-time view of the whole observability plane.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Folded instruments, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSample>,
    /// Recent trace events, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Trace events evicted from the bounded ring before this scrape.
    pub trace_dropped: u64,
    /// Replan decisions, oldest first.
    pub decisions: Vec<ReplanDecision>,
    /// Decisions evicted from the bounded log before this scrape.
    pub decisions_dropped: u64,
}

impl ObsSnapshot {
    /// The sample with this exact name + label set.
    pub fn sample(&self, name: &str, labels: &Labels) -> Option<&MetricSample> {
        self.metrics.iter().find(|s| s.name == name && &s.labels == labels)
    }

    /// Sum of a counter across all label sets (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// The folded value of a gauge (first label set under `name`).
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find(|s| s.name == name).and_then(|s| match &s.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        })
    }

    /// All label-set histograms under `name`, folded into one.
    pub fn histogram_total(&self, name: &str) -> Option<HistSnapshot> {
        let mut out: Option<HistSnapshot> = None;
        for s in self.metrics.iter().filter(|s| s.name == name) {
            if let MetricValue::Histogram(h) = &s.value {
                let acc = out.get_or_insert_with(HistSnapshot::empty);
                for (i, n) in h.buckets.iter().enumerate() {
                    acc.buckets[i] += n;
                }
                acc.count += h.count;
                acc.sum = acc.sum.wrapping_add(h.sum);
                acc.max = acc.max.max(h.max);
            }
        }
        out
    }

    /// Renders the full snapshot as JSON (one metric / trace event /
    /// decision per line; deterministic ordering).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"metrics\": [\n");
        for (i, s) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            render_metric_json(&mut out, s);
        }
        out.push_str("\n],\n");
        out.push_str(&format!("\"trace_dropped\": {},\n\"trace\": [\n", self.trace_dropped));
        for (i, t) in self.trace.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            render_trace_json(&mut out, t);
        }
        out.push_str("\n],\n");
        out.push_str(&format!(
            "\"decisions_dropped\": {},\n\"decisions\": [\n",
            self.decisions_dropped
        ));
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            render_decision_json(&mut out, d);
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Renders the metric plane in Prometheus text exposition format.
    /// Trace and decisions have no Prometheus form and are omitted.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut last_name: Option<&str> = None;
        for s in &self.metrics {
            if last_name != Some(s.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", s.name, s.value.kind()));
                last_name = Some(s.name.as_str());
            }
            match &s.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&s.name);
                    render_prom_labels(&mut out, &s.labels, None);
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, n) in h.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        cum += n;
                        out.push_str(&format!("{}_bucket", s.name));
                        let le = bucket_upper_bound(i);
                        let le = if le == u64::MAX { "+Inf".to_string() } else { le.to_string() };
                        render_prom_labels(&mut out, &s.labels, Some(&le));
                        out.push_str(&format!(" {cum}\n"));
                    }
                    out.push_str(&format!("{}_bucket", s.name));
                    render_prom_labels(&mut out, &s.labels, Some("+Inf"));
                    out.push_str(&format!(" {}\n", h.count));
                    out.push_str(&format!("{}_sum", s.name));
                    render_prom_labels(&mut out, &s.labels, None);
                    out.push_str(&format!(" {}\n", h.sum));
                    out.push_str(&format!("{}_count", s.name));
                    render_prom_labels(&mut out, &s.labels, None);
                    out.push_str(&format!(" {}\n", h.count));
                }
            }
        }
        out
    }
}

/// Escapes a string for a JSON string literal (without the quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number for `v`: NaN and infinities (invalid JSON) render as
/// `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn render_labels_json(out: &mut String, labels: &Labels) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    out.push('}');
}

fn render_series_json(out: &mut String, series: &[(String, f64)]) {
    out.push('{');
    for (i, (k, v)) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(k), json_f64(*v)));
    }
    out.push('}');
}

fn render_metric_json(out: &mut String, s: &MetricSample) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"type\":\"{}\",\"labels\":",
        json_escape(&s.name),
        s.value.kind()
    ));
    render_labels_json(out, &s.labels);
    match &s.value {
        MetricValue::Counter(v) | MetricValue::Gauge(v) => {
            out.push_str(&format!(",\"value\":{v}}}"));
        }
        MetricValue::Histogram(h) => {
            let p = |q: f64| match h.percentile(q) {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.max,
                p(0.50),
                p(0.95),
                p(0.99),
            ));
            for (i, (idx, n)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{idx},{n}]"));
            }
            out.push_str("]}");
        }
    }
}

fn render_trace_json(out: &mut String, t: &TraceEvent) {
    let shard = match t.shard {
        Some(s) => s.to_string(),
        None => "null".to_string(),
    };
    let query = match &t.query {
        Some(q) => format!("\"{}\"", json_escape(q)),
        None => "null".to_string(),
    };
    out.push_str(&format!(
        "{{\"ts\":{},\"shard\":{},\"query\":{},\"kind\":\"{}\",\"payload\":\"{}\"}}",
        t.ts,
        shard,
        query,
        t.kind.as_str(),
        json_escape(&t.payload)
    ));
}

fn render_decision_json(out: &mut String, d: &ReplanDecision) {
    out.push_str(&format!(
        "{{\"seq\":{},\"query\":\"{}\",\"at\":{},\"drift\":{},\"switched\":{},\"measured\":",
        d.seq,
        json_escape(&d.query),
        d.at,
        json_f64(d.drift),
        d.switched
    ));
    render_series_json(out, &d.measured);
    out.push_str(",\"candidates\":[");
    for (i, c) in d.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"plan\":\"{}\",\"est_cost\":{},\"chosen\":{}}}",
            json_escape(&c.plan),
            json_f64(c.est_cost),
            c.chosen
        ));
    }
    out.push_str("],\"actuals\":");
    match &d.actuals {
        Some(a) => render_series_json(out, a),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn render_prom_labels(out: &mut String, labels: &Labels, le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}=\"{}\"", k, prom_escape(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
pub fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{labels, GaugeFold};
    use crate::trace::{TraceKind, TraceRing};
    use crate::Obs;

    #[test]
    fn json_escaping_covers_quotes_backslashes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prom_escaping_covers_label_values() {
        assert_eq!(prom_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_output_is_deterministic_and_ordered() {
        let obs = Obs::new();
        obs.metrics.counter("zz", labels(&[])).add(1);
        obs.metrics.counter("aa", labels(&[("q", "x\"y")])).add(2);
        obs.metrics.gauge("mid", labels(&[]), GaugeFold::Sum).set(3);
        let a = obs.snapshot().to_json();
        let b = obs.snapshot().to_json();
        assert_eq!(a, b, "same state must render byte-identically");
        let aa = a.find("\"name\":\"aa\"").unwrap();
        let mid = a.find("\"name\":\"mid\"").unwrap();
        let zz = a.find("\"name\":\"zz\"").unwrap();
        assert!(aa < mid && mid < zz, "metrics must be name-sorted");
        assert!(a.contains("x\\\"y"), "label values must be escaped");
    }

    #[test]
    fn histogram_json_has_percentiles_and_sparse_buckets() {
        let obs = Obs::new();
        let h = obs.metrics.histogram("lat", labels(&[]));
        h.observe(1);
        h.observe(1000);
        let json = obs.snapshot().to_json();
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"p99\":1000"));
        assert!(json.contains("\"buckets\":[[1,1],[10,1]]"));
    }

    #[test]
    fn empty_histogram_renders_null_percentiles() {
        let obs = Obs::new();
        let _ = obs.metrics.histogram("lat", labels(&[]));
        let json = obs.snapshot().to_json();
        assert!(json.contains("\"p50\":null,\"p95\":null,\"p99\":null"));
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let obs = Obs::new();
        obs.metrics.counter("c_total", labels(&[("s", "0")])).add(5);
        let h = obs.metrics.histogram("lat", labels(&[]));
        h.observe(1);
        h.observe(2);
        h.observe(3);
        let text = obs.snapshot().to_prometheus();
        assert!(text.contains("# TYPE c_total counter\n"));
        assert!(text.contains("c_total{s=\"0\"} 5\n"));
        assert!(text.contains("# TYPE lat histogram\n"));
        // Bucket 1 (le=1): 1 obs; bucket 2 (le=3): cumulative 3.
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum 6\n"));
        assert!(text.contains("lat_count 3\n"));
    }

    #[test]
    fn trace_and_decisions_appear_in_json() {
        let obs = Obs::new();
        obs.trace.emit(7, Some(1), Some("q0"), TraceKind::Ingest, "rows=10".into());
        let json = obs.snapshot().to_json();
        assert!(json.contains(
            "{\"ts\":7,\"shard\":1,\"query\":\"q0\",\"kind\":\"ingest\",\"payload\":\"rows=10\"}"
        ));
    }

    #[test]
    fn zero_capacity_ring_snapshot_is_clean() {
        let ring = TraceRing::with_capacity(0);
        ring.emit(1, None, None, TraceKind::MergeEmit, String::new());
        let (events, dropped) = ring.snapshot();
        assert!(events.is_empty() && dropped == 0);
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let obs = Obs::new();
        obs.metrics.counter("c", labels(&[("s", "0")])).add(1);
        obs.metrics.counter("c", labels(&[("s", "1")])).add(2);
        obs.metrics.gauge("g", labels(&[]), GaugeFold::Max).raise(9);
        let h0 = obs.metrics.histogram("h", labels(&[("s", "0")]));
        let h1 = obs.metrics.histogram("h", labels(&[("s", "1")]));
        h0.observe(4);
        h1.observe(8);
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("c"), 3);
        assert_eq!(snap.gauge_value("g"), Some(9));
        let h = snap.histogram_total("h").unwrap();
        assert_eq!((h.count, h.max), (2, 8));
        assert!(snap.sample("c", &labels(&[("s", "1")])).is_some());
        assert!(snap.sample("c", &labels(&[("s", "2")])).is_none());
    }
}
