//! The metric registry: named instruments with per-worker atomic cells.
//!
//! Registration (cold path) takes a short mutex to find or create the
//! instrument and append a fresh cell; every subsequent increment is a
//! relaxed atomic op on that cell — worker threads never share a cache
//! line unless they explicitly `clone()` a handle. A scrape folds all
//! cells of an instrument (sum for counters; sum or max for gauges,
//! chosen at registration) without pausing writers: values are atomic
//! loads, so a scrape concurrent with ingest sees a consistent-enough
//! point-in-time view and never blocks the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::hist::{HistCore, HistSnapshot, Histogram};

/// Sorted `(key, value)` label pairs identifying one instrument.
pub type Labels = Vec<(String, String)>;

/// Builds a sorted label set from string pairs.
pub fn labels(pairs: &[(&str, &str)]) -> Labels {
    let mut out: Labels = pairs.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
    out.sort();
    out
}

/// How a gauge folds its per-worker cells on scrape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeFold {
    /// Cells are partial values; the instrument reads as their sum
    /// (e.g. per-shard queue depths folded into a total).
    Sum,
    /// Cells are competing observations; the instrument reads as the
    /// largest (e.g. peak buffered depth across workers).
    Max,
}

/// A monotonic counter handle. One handle per worker thread; increments
/// are relaxed atomic adds on a private cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry.
    pub fn standalone() -> Counter {
        Counter { cell: Arc::new(AtomicU64::new(0)) }
    }

    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Relaxed);
    }

    /// This cell's value (not the folded instrument total).
    pub fn get(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

/// A gauge handle: an arbitrary up/down value owned by one worker.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn standalone() -> Gauge {
        Gauge { cell: Arc::new(AtomicU64::new(0)) }
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Relaxed);
    }

    /// Saturating decrement — a gauge never wraps below zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self.cell.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Raises the cell to `v` if larger (peak tracking).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.cell.fetch_max(v, Relaxed);
    }

    /// This cell's value (not the folded instrument total).
    pub fn get(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

/// A scrape-time value source for gauges whose truth lives elsewhere
/// (e.g. the process-wide symbol-intern table).
type GaugeSource = Box<dyn Fn() -> u64 + Send + Sync>;

enum Entry {
    Counter { cells: Vec<Arc<AtomicU64>> },
    Gauge { fold: GaugeFold, cells: Vec<Arc<AtomicU64>>, sources: Vec<GaugeSource> },
    Histogram { cells: Vec<Arc<HistCore>> },
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter { .. } => "counter",
            Entry::Gauge { .. } => "gauge",
            Entry::Histogram { .. } => "histogram",
        }
    }
}

/// One instrument's folded value in a scrape.
#[derive(Debug, Clone)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histogram(HistSnapshot),
}

impl MetricValue {
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One `(name, labels, value)` row of a scrape.
#[derive(Debug, Clone)]
pub struct MetricSample {
    pub name: String,
    pub labels: Labels,
    pub value: MetricValue,
}

/// The instrument table. Iteration order (and therefore every export) is
/// deterministic: instruments sort by name, then label set.
#[derive(Default)]
pub struct Registry {
    // zlint::allow(locks, "designed cold-path exception: this mutex guards registration and scrape only; per-event updates go through lock-free atomic cells")
    inner: Mutex<BTreeMap<(String, Labels), Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // zlint::allow(locks, "Debug formatting is diagnostics-only, never on the per-event path")
        let n = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Registry").field("instruments", &n).finish()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a new counter cell under `name` + `labels`. Call once per
    /// worker thread; the scrape sums all cells.
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: Labels) -> Counter {
        let cell = Arc::new(AtomicU64::new(0));
        // zlint::allow(locks, "registration path: called once per instrument at startup, never per event")
        let mut map = self.inner.lock().expect("registry poisoned");
        let entry = map
            .entry((name.to_string(), labels))
            .or_insert_with(|| Entry::Counter { cells: Vec::new() });
        match entry {
            Entry::Counter { cells } => cells.push(cell.clone()),
            other => panic!("instrument '{name}' already registered as {}", other.kind()),
        }
        Counter { cell }
    }

    /// Registers a new gauge cell under `name` + `labels` with the given
    /// fold mode. The fold mode of the first registration wins.
    pub fn gauge(&self, name: &str, labels: Labels, fold: GaugeFold) -> Gauge {
        let cell = Arc::new(AtomicU64::new(0));
        // zlint::allow(locks, "registration path: called once per instrument at startup, never per event")
        let mut map = self.inner.lock().expect("registry poisoned");
        let entry = map.entry((name.to_string(), labels)).or_insert_with(|| Entry::Gauge {
            fold,
            cells: Vec::new(),
            sources: Vec::new(),
        });
        match entry {
            Entry::Gauge { cells, .. } => cells.push(cell.clone()),
            other => panic!("instrument '{name}' already registered as {}", other.kind()),
        }
        Gauge { cell }
    }

    /// Registers a scrape-time gauge source: `f` is evaluated on every
    /// scrape and folded like a cell. Use for values whose truth lives
    /// outside the registry (process-global tables).
    pub fn gauge_fn(
        &self,
        name: &str,
        labels: Labels,
        fold: GaugeFold,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        // zlint::allow(locks, "registration path: called once per instrument at startup, never per event")
        let mut map = self.inner.lock().expect("registry poisoned");
        let entry = map.entry((name.to_string(), labels)).or_insert_with(|| Entry::Gauge {
            fold,
            cells: Vec::new(),
            sources: Vec::new(),
        });
        match entry {
            Entry::Gauge { sources, .. } => sources.push(Box::new(f)),
            other => panic!("instrument '{name}' already registered as {}", other.kind()),
        }
    }

    /// Registers a new histogram cell block under `name` + `labels`. Call
    /// once per worker thread; the scrape sums all blocks bucket-wise.
    pub fn histogram(&self, name: &str, labels: Labels) -> Histogram {
        let core = Arc::new(HistCore::new());
        // zlint::allow(locks, "registration path: called once per instrument at startup, never per event")
        let mut map = self.inner.lock().expect("registry poisoned");
        let entry = map
            .entry((name.to_string(), labels))
            .or_insert_with(|| Entry::Histogram { cells: Vec::new() });
        match entry {
            Entry::Histogram { cells } => cells.push(core.clone()),
            other => panic!("instrument '{name}' already registered as {}", other.kind()),
        }
        Histogram { core }
    }

    /// Folds every instrument into a deterministic, sorted sample list.
    /// Never blocks writers: cell reads are relaxed atomic loads.
    pub fn scrape(&self) -> Vec<MetricSample> {
        // zlint::allow(locks, "scrape path: exporter cadence, not per-event; writers stay lock-free")
        let map = self.inner.lock().expect("registry poisoned");
        map.iter()
            .map(|((name, labels), entry)| {
                let value = match entry {
                    Entry::Counter { cells } => {
                        MetricValue::Counter(cells.iter().map(|c| c.load(Relaxed)).sum())
                    }
                    Entry::Gauge { fold, cells, sources } => {
                        let vals = cells
                            .iter()
                            .map(|c| c.load(Relaxed))
                            .chain(sources.iter().map(|f| f()));
                        MetricValue::Gauge(match fold {
                            GaugeFold::Sum => vals.sum(),
                            GaugeFold::Max => vals.max().unwrap_or(0),
                        })
                    }
                    Entry::Histogram { cells } => {
                        let mut snap = HistSnapshot::empty();
                        for c in cells {
                            c.fold_into(&mut snap);
                        }
                        MetricValue::Histogram(snap)
                    }
                };
                MetricSample { name: name.clone(), labels: labels.clone(), value }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_value(samples: &[MetricSample], name: &str) -> u64 {
        match &samples.iter().find(|s| s.name == name).expect("sample").value {
            MetricValue::Counter(v) => *v,
            other => panic!("expected counter, got {}", other.kind()),
        }
    }

    fn gauge_value(samples: &[MetricSample], name: &str) -> u64 {
        match &samples.iter().find(|s| s.name == name).expect("sample").value {
            MetricValue::Gauge(v) => *v,
            other => panic!("expected gauge, got {}", other.kind()),
        }
    }

    #[test]
    fn counters_fold_by_sum_across_cells() {
        let r = Registry::new();
        let a = r.counter("c", labels(&[]));
        let b = r.counter("c", labels(&[]));
        a.add(3);
        b.add(4);
        assert_eq!(counter_value(&r.scrape(), "c"), 7);
    }

    #[test]
    fn gauges_fold_by_mode() {
        let r = Registry::new();
        let a = r.gauge("depth", labels(&[]), GaugeFold::Sum);
        let b = r.gauge("depth", labels(&[]), GaugeFold::Sum);
        a.set(5);
        b.set(2);
        let p = r.gauge("peak", labels(&[]), GaugeFold::Max);
        let q = r.gauge("peak", labels(&[]), GaugeFold::Max);
        p.raise(9);
        q.raise(4);
        let s = r.scrape();
        assert_eq!(gauge_value(&s, "depth"), 7);
        assert_eq!(gauge_value(&s, "peak"), 9);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::standalone();
        g.add(2);
        g.sub(5);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_fn_is_read_at_scrape_time() {
        let r = Registry::new();
        let src = Arc::new(AtomicU64::new(1));
        let reader = src.clone();
        r.gauge_fn("live", labels(&[]), GaugeFold::Sum, move || reader.load(Relaxed));
        assert_eq!(gauge_value(&r.scrape(), "live"), 1);
        src.store(42, Relaxed);
        assert_eq!(gauge_value(&r.scrape(), "live"), 42);
    }

    #[test]
    fn distinct_labels_are_distinct_instruments() {
        let r = Registry::new();
        r.counter("c", labels(&[("shard", "0")])).add(1);
        r.counter("c", labels(&[("shard", "1")])).add(2);
        let s = r.scrape();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].labels, labels(&[("shard", "0")]));
        assert_eq!(s[1].labels, labels(&[("shard", "1")]));
    }

    #[test]
    fn scrape_is_sorted_by_name_then_labels() {
        let r = Registry::new();
        r.counter("b", labels(&[])).inc();
        r.counter("a", labels(&[("x", "2")])).inc();
        r.counter("a", labels(&[("x", "1")])).inc();
        let names: Vec<_> = r.scrape().iter().map(|s| (s.name.clone(), s.labels.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("a".into(), labels(&[("x", "1")])),
                ("a".into(), labels(&[("x", "2")])),
                ("b".into(), labels(&[]))
            ]
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("c", labels(&[]));
        let _ = r.gauge("c", labels(&[]), GaugeFold::Sum);
    }

    #[test]
    fn histogram_cells_fold_bucketwise() {
        let r = Registry::new();
        let h1 = r.histogram("lat", labels(&[]));
        let h2 = r.histogram("lat", labels(&[]));
        h1.observe(1);
        h2.observe(100);
        let s = r.scrape();
        match &s[0].value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.max, 100);
            }
            other => panic!("expected histogram, got {}", other.kind()),
        }
    }
}
