//! Log-bucketed latency histograms.
//!
//! A histogram owns 65 power-of-two buckets: bucket `0` holds the value
//! `0`, bucket `i` (1 ≤ i ≤ 63) holds values in `[2^(i-1), 2^i - 1]`, and
//! bucket `64` holds everything from `2^63` up to and including
//! `u64::MAX`. Percentiles are derived from cumulative bucket counts and
//! clamped to the largest value actually observed, so `p100` is exact and
//! lower quantiles are conservative (never reported below the true value's
//! bucket, never above the observed maximum).
//!
//! Every operation on the hot path is a relaxed atomic add on cells owned
//! by the recording thread — no locks, no CAS loops (except `max`, which
//! uses `fetch_max`).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of buckets: one for zero, one per bit position, one saturating.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for a recorded value: `0` for zero, otherwise the bit
/// width of the value (`64 - leading_zeros`), saturating at 64.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket: `0`, `2^i - 1`, or `u64::MAX` for
/// the saturating bucket.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// The atomic cell block behind one histogram handle.
#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    /// Wrapping sum of observed values (documented: overflows wrap; the
    /// bucket counts, not the sum, are the source of truth for tails).
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> HistCore {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Folds this cell block into a snapshot accumulator.
    pub(crate) fn fold_into(&self, snap: &mut HistSnapshot) {
        for (i, b) in self.buckets.iter().enumerate() {
            snap.buckets[i] += b.load(Relaxed);
        }
        snap.count += self.count.load(Relaxed);
        snap.sum = snap.sum.wrapping_add(self.sum.load(Relaxed));
        snap.max = snap.max.max(self.max.load(Relaxed));
    }
}

/// A histogram handle. Each handle owns its own cell block (register one
/// per worker thread); cloning shares the block. Scrapes fold all blocks
/// registered under the same instrument name + labels.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) core: Arc<HistCore>,
}

impl Histogram {
    /// A histogram not attached to any registry — observations are kept
    /// but only reachable through [`Histogram::snapshot`]. Useful for
    /// standalone measurement (benches) without a full [`crate::Obs`] hub.
    pub fn standalone() -> Histogram {
        Histogram { core: Arc::new(HistCore::new()) }
    }

    /// Records one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.core.observe(v);
    }

    /// Times a closure and records the elapsed nanoseconds.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = f();
        self.observe(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        out
    }

    /// A point-in-time copy of this handle's cell block only (not the
    /// whole instrument).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::empty();
        self.core.fold_into(&mut snap);
        snap
    }
}

/// A folded, immutable view of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (not cumulative), indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Wrapping sum of all observed values.
    pub sum: u64,
    /// Largest value observed (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    pub fn empty() -> HistSnapshot {
        HistSnapshot { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) estimated from bucket upper
    /// bounds, clamped to the observed maximum. `None` when the histogram
    /// is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// `(p50, p95, p99, max)` — `None` when empty.
    pub fn summary(&self) -> Option<(u64, u64, u64, u64)> {
        Some((self.percentile(0.50)?, self.percentile(0.95)?, self.percentile(0.99)?, self.max))
    }

    /// Non-zero buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|(_, n)| **n > 0).map(|(i, n)| (i, *n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        // Every bucket's upper bound maps back into that bucket.
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
        // And one past the bound maps into the next bucket (except MAX).
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1, "bucket {i}");
        }
    }

    #[test]
    fn saturating_bucket_holds_u64_max() {
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        let h = Histogram::standalone();
        h.observe(u64::MAX);
        h.observe(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.percentile(1.0), Some(u64::MAX));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let s = Histogram::standalone().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.percentile(0.99), None);
        assert_eq!(s.summary(), None);
    }

    #[test]
    fn percentiles_clamp_to_observed_max() {
        let h = Histogram::standalone();
        // 9 values of 5 (bucket 3, bound 7) and one of 6.
        for _ in 0..9 {
            h.observe(5);
        }
        h.observe(6);
        let s = h.snapshot();
        // Bucket bound is 7, but nothing above 6 was ever seen.
        assert_eq!(s.percentile(0.5), Some(6));
        assert_eq!(s.percentile(0.99), Some(6));
        assert_eq!(s.max, 6);
    }

    #[test]
    fn percentile_walks_cumulative_counts() {
        let h = Histogram::standalone();
        for v in [0u64, 1, 2, 4, 8, 16, 32, 64, 128, 256] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        // 10th percentile: the first observation (0).
        assert_eq!(s.percentile(0.10), Some(0));
        // Median: 5th of 10 sorted values is 8 → bucket bound 15,
        // clamped only by max (256), so 15.
        assert_eq!(s.percentile(0.50), Some(15));
        assert_eq!(s.percentile(1.0), Some(256));
    }

    #[test]
    fn zero_values_count() {
        let h = Histogram::standalone();
        h.observe(0);
        h.observe(0);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 0);
        assert_eq!(s.percentile(0.99), Some(0));
        assert_eq!(s.nonzero_buckets(), vec![(0, 2)]);
    }

    #[test]
    fn clone_shares_cells() {
        let h = Histogram::standalone();
        let h2 = h.clone();
        h.observe(10);
        h2.observe(20);
        assert_eq!(h.snapshot().count, 2);
    }
}
