//! The planner decision log: every §5.3 replan as a queryable record.
//!
//! Each [`ReplanDecision`] captures what the adaptive controller *saw*
//! (sampled rates and selectivities, measured drift), what it *considered*
//! (cost-model estimates per candidate plan), what it *chose* (the
//! operator tree installed, or kept), and — back-filled at the next
//! measurement window — what actually *happened*, so estimate-vs-actual
//! error is a first-class series rather than something reconstructed from
//! logs. Statistics are stored as generic named series (`rate.IBM`,
//! `sel.Oracle`, `pred.2`) so this crate stays a dependency-free leaf.

use std::sync::Mutex;

/// One candidate plan the controller costed.
#[derive(Debug, Clone)]
pub struct PlanCandidate {
    /// Human-readable operator tree (one line).
    pub plan: String,
    /// The cost model's unit-cost estimate under the measured statistics.
    pub est_cost: f64,
    /// Whether this candidate was installed (exactly one per decision).
    pub chosen: bool,
}

/// Named statistic series sampled at a decision point, e.g.
/// `("rate.IBM", 0.33)` or `("sel.Sun", 0.9)`.
pub type StatSeries = Vec<(String, f64)>;

/// One replan decision.
#[derive(Debug, Clone)]
pub struct ReplanDecision {
    /// Monotonic decision number (unique per log).
    pub seq: u64,
    /// The query the decision is about (e.g. `"q0"`).
    pub query: String,
    /// Engine watermark (event time) when the decision was taken.
    pub at: u64,
    /// Measured relative statistics drift that triggered the check.
    pub drift: f64,
    /// Statistics sampled over the window that closed at this decision.
    pub measured: StatSeries,
    /// Candidate plans with cost estimates (the incumbent and the
    /// optimizer's proposal; the DP search space is summarized by its
    /// winner).
    pub candidates: Vec<PlanCandidate>,
    /// Whether a new plan was installed (`false` = incumbent kept).
    pub switched: bool,
    /// Statistics observed over the *next* window, back-filled when that
    /// window closes — `None` until then. Comparing `measured` estimates
    /// with these actuals gives the estimate-vs-actual error series.
    pub actuals: Option<StatSeries>,
}

/// A bounded, append-only log of replan decisions.
pub struct DecisionLog {
    capacity: usize,
    inner: Mutex<LogInner>,
}

struct LogInner {
    decisions: Vec<ReplanDecision>,
    next_seq: u64,
    dropped: u64,
}

impl std::fmt::Debug for DecisionLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecisionLog").field("capacity", &self.capacity).finish()
    }
}

/// Default decision-log capacity. Replans are rare (at most one per
/// adaptation window), so a small bound holds hours of history.
pub const DEFAULT_DECISION_CAPACITY: usize = 256;

impl Default for DecisionLog {
    fn default() -> DecisionLog {
        DecisionLog::with_capacity(DEFAULT_DECISION_CAPACITY)
    }
}

impl DecisionLog {
    pub fn with_capacity(capacity: usize) -> DecisionLog {
        DecisionLog {
            capacity,
            inner: Mutex::new(LogInner { decisions: Vec::new(), next_seq: 0, dropped: 0 }),
        }
    }

    /// Appends a decision (its `seq` field is assigned here) and returns
    /// the sequence number, for later [`DecisionLog::record_actuals`].
    pub fn record(&self, mut decision: ReplanDecision) -> u64 {
        let mut log = self.inner.lock().expect("decision log poisoned");
        let seq = log.next_seq;
        log.next_seq += 1;
        decision.seq = seq;
        if log.decisions.len() == self.capacity {
            log.decisions.remove(0);
            log.dropped += 1;
        }
        log.decisions.push(decision);
        seq
    }

    /// Back-fills the observed statistics for decision `seq`. Returns
    /// false when the decision has been evicted (or never existed).
    pub fn record_actuals(&self, seq: u64, actuals: StatSeries) -> bool {
        let mut log = self.inner.lock().expect("decision log poisoned");
        match log.decisions.iter_mut().find(|d| d.seq == seq) {
            Some(d) => {
                d.actuals = Some(actuals);
                true
            }
            None => false,
        }
    }

    /// `(decisions oldest-first, number evicted)`.
    pub fn snapshot(&self) -> (Vec<ReplanDecision>, u64) {
        let log = self.inner.lock().expect("decision log poisoned");
        (log.decisions.clone(), log.dropped)
    }

    /// Number of decisions currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("decision log poisoned").decisions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(query: &str) -> ReplanDecision {
        ReplanDecision {
            seq: 0,
            query: query.to_string(),
            at: 10,
            drift: 0.5,
            measured: vec![("rate.A".into(), 0.25)],
            candidates: vec![
                PlanCandidate { plan: "((A B) C)".into(), est_cost: 10.0, chosen: false },
                PlanCandidate { plan: "(A (B C))".into(), est_cost: 7.0, chosen: true },
            ],
            switched: true,
            actuals: None,
        }
    }

    #[test]
    fn assigns_monotonic_seqs_and_backfills_actuals() {
        let log = DecisionLog::default();
        let a = log.record(decision("q0"));
        let b = log.record(decision("q0"));
        assert_eq!((a, b), (0, 1));
        assert!(log.record_actuals(a, vec![("rate.A".into(), 0.5)]));
        let (ds, dropped) = log.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(ds[0].actuals.as_ref().unwrap()[0].1, 0.5);
        assert!(ds[1].actuals.is_none());
    }

    #[test]
    fn bounded_log_evicts_oldest() {
        let log = DecisionLog::with_capacity(2);
        for _ in 0..3 {
            log.record(decision("q0"));
        }
        let (ds, dropped) = log.snapshot();
        assert_eq!(ds.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(dropped, 1);
        // Back-filling an evicted decision reports failure.
        assert!(!log.record_actuals(0, vec![]));
    }
}
