//! Oracle tests: the engine must produce *exactly* the matches enumerated by
//! the brute-force reference matcher — for every plan shape, with hashing on
//! and off, with EAT pruning on and off, and for every batch size. This
//! pins down the exactly-once semantics of the batch-iterator model (§4.3)
//! and the correctness of each operator algorithm (§4.4).

use zstream_core::reference::{reference_signatures, Signature};
use zstream_core::{build_intake, EngineBuilder, EngineConfig, NegStrategy, PlanConfig, PlanShape};
use zstream_events::{stock, EventRef};
use zstream_lang::Query;

/// Deterministic pseudo-random stream of stock events over a small alphabet,
/// with occasional timestamp ties to exercise boundary comparisons.
fn gen_stream(seed: u64, len: usize, names: &[&str]) -> Vec<EventRef> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut ts = 0u64;
    (0..len)
        .map(|i| {
            ts += next() % 3; // 0 => timestamp tie with the previous event
            let name = names[(next() as usize) % names.len()];
            let price = (next() % 1000) as f64 / 10.0;
            let volume = (next() % 100) as i64;
            stock(ts, i as i64, name, price, volume)
        })
        .collect()
}

fn engine_signatures(
    src: &str,
    shape: Option<PlanShape>,
    neg: NegStrategy,
    batch_size: usize,
    plan_cfg: PlanConfig,
    events: &[EventRef],
) -> Vec<Signature> {
    let mut b = EngineBuilder::parse(src)
        .unwrap()
        .stock_routing()
        .neg_strategy(neg)
        .config(EngineConfig { batch_size, plan: plan_cfg });
    if let Some(s) = shape {
        b = b.shape(s);
    }
    let mut engine = b.build().unwrap();
    let mut out = Vec::new();
    for e in events {
        out.extend(engine.push(e.clone()));
    }
    out.extend(engine.flush());
    let mut sigs: Vec<Signature> = out.iter().map(|r| engine.record_signature(r)).collect();
    let before_dedup = sigs.len();
    sigs.sort();
    sigs.dedup();
    assert_eq!(before_dedup, sigs.len(), "engine emitted duplicate matches for {src}");
    sigs
}

fn reference_for(src: &str, events: &[EventRef]) -> Vec<Signature> {
    let query = Query::parse(src).unwrap();
    let (rewritten, _) = zstream_core::logical::rewrite_query(&query);
    let aq = zstream_lang::analyze(
        &rewritten,
        &zstream_lang::SchemaMap::uniform(zstream_events::Schema::stocks()),
    )
    .unwrap();
    let intake = build_intake(&aq, Some("name")).unwrap();
    reference_signatures(&aq, &intake, events)
}

/// Checks one query against the oracle across shapes, batches and toggles.
fn check_flat(src: &str, n_units: usize, seeds: std::ops::Range<u64>, names: &[&str]) {
    for seed in seeds {
        let events = gen_stream(seed, 40, names);
        let expected = reference_for(src, &events);
        let shapes: Vec<PlanShape> = if n_units <= 4 {
            PlanShape::enumerate_all(n_units)
        } else {
            vec![PlanShape::left_deep(n_units), PlanShape::right_deep(n_units)]
        };
        for shape in shapes {
            for (batch, hash, prune) in [
                (1, true, true),
                (7, true, true),
                (1000, true, true),
                (3, false, true),
                (5, true, false),
            ] {
                let cfg = PlanConfig { use_hash: hash, eat_pruning: prune };
                let got = engine_signatures(
                    src,
                    Some(shape.clone()),
                    NegStrategy::PushdownPreferred,
                    batch,
                    cfg,
                    &events,
                );
                assert_eq!(
                    got, expected,
                    "mismatch: seed={seed} shape={shape} batch={batch} hash={hash} prune={prune} query={src}"
                );
            }
        }
    }
}

/// Checks a non-flat (conjunction/disjunction) query syntax-directed.
fn check_syntax(src: &str, seeds: std::ops::Range<u64>, names: &[&str]) {
    for seed in seeds {
        let events = gen_stream(seed, 30, names);
        let expected = reference_for(src, &events);
        for (batch, hash) in [(1, true), (6, true), (4, false), (1000, true)] {
            let cfg = PlanConfig { use_hash: hash, ..Default::default() };
            let got =
                engine_signatures(src, None, NegStrategy::PushdownPreferred, batch, cfg, &events);
            assert_eq!(
                got, expected,
                "mismatch: seed={seed} batch={batch} hash={hash} query={src}"
            );
        }
    }
}

#[test]
fn pure_sequence_three_classes() {
    check_flat("PATTERN IBM; Sun; Oracle WITHIN 20", 3, 0..6, &["IBM", "Sun", "Oracle"]);
}

#[test]
fn sequence_with_range_predicate() {
    check_flat(
        "PATTERN IBM; Sun; Oracle WHERE IBM.price > Sun.price WITHIN 25",
        3,
        0..6,
        &["IBM", "Sun", "Oracle"],
    );
}

#[test]
fn sequence_with_equality_hash() {
    // Volume equality between first and last class (coarse domain => hits).
    check_flat(
        "PATTERN IBM; Sun; Oracle WHERE IBM.volume = Oracle.volume WITHIN 40",
        3,
        0..6,
        &["IBM", "Sun", "Oracle"],
    );
}

#[test]
fn four_class_sequence_all_shapes() {
    check_flat(
        "PATTERN IBM; Sun; Oracle; Google \
         WHERE Oracle.price > Sun.price AND Oracle.price > Google.price \
         WITHIN 18",
        4,
        0..4,
        &["IBM", "Sun", "Oracle", "Google"],
    );
}

#[test]
fn negation_pushdown_matches_oracle() {
    check_flat("PATTERN IBM; !Sun; Oracle WITHIN 20", 2, 0..8, &["IBM", "Sun", "Oracle"]);
}

#[test]
fn negation_with_anchor_predicate() {
    // Predicate between negation and its anchor: still push-down eligible.
    check_flat(
        "PATTERN IBM; !Sun; Oracle WHERE Sun.price < Oracle.price WITHIN 20",
        2,
        0..8,
        &["IBM", "Sun", "Oracle"],
    );
}

#[test]
fn negation_top_filter_matches_oracle() {
    let src = "PATTERN IBM; !Sun; Oracle WHERE Sun.price > IBM.price AND Sun.price < Oracle.price WITHIN 20";
    for seed in 0..8 {
        let events = gen_stream(seed, 40, &["IBM", "Sun", "Oracle"]);
        let expected = reference_for(src, &events);
        for batch in [1, 9, 1000] {
            let got = engine_signatures(
                src,
                None,
                NegStrategy::TopFilter,
                batch,
                PlanConfig::default(),
                &events,
            );
            assert_eq!(got, expected, "seed={seed} batch={batch}");
        }
    }
}

#[test]
fn both_negation_strategies_agree() {
    let src = "PATTERN IBM; !Sun; Oracle WITHIN 15";
    for seed in 0..10 {
        let events = gen_stream(seed, 45, &["IBM", "Sun", "Oracle"]);
        let pushdown = engine_signatures(
            src,
            None,
            NegStrategy::PushdownPreferred,
            4,
            PlanConfig::default(),
            &events,
        );
        let top =
            engine_signatures(src, None, NegStrategy::TopFilter, 4, PlanConfig::default(), &events);
        assert_eq!(pushdown, top, "strategies disagree at seed {seed}");
    }
}

#[test]
fn negated_disjunction_matches_oracle() {
    check_flat(
        "PATTERN IBM; !(Sun | Google); Oracle WITHIN 18",
        2,
        0..6,
        &["IBM", "Sun", "Oracle", "Google"],
    );
}

#[test]
fn rewritten_negated_conjunction_matches_oracle() {
    // `(!Sun & !Google)` rewrites to `!(Sun | Google)` (§5.2.1) and must
    // produce identical results.
    for seed in 0..4 {
        let events = gen_stream(seed, 35, &["IBM", "Sun", "Oracle", "Google"]);
        let a = reference_for("PATTERN IBM; (!Sun & !Google); Oracle WITHIN 18", &events);
        let b = reference_for("PATTERN IBM; !(Sun | Google); Oracle WITHIN 18", &events);
        assert_eq!(a, b);
        let got = engine_signatures(
            "PATTERN IBM; (!Sun & !Google); Oracle WITHIN 18",
            None,
            NegStrategy::PushdownPreferred,
            3,
            PlanConfig::default(),
            &events,
        );
        assert_eq!(got, a, "seed={seed}");
    }
}

#[test]
fn counted_closure_matches_oracle() {
    check_flat("PATTERN IBM; Sun^2; Oracle WITHIN 25", 1, 0..8, &["IBM", "Sun", "Oracle"]);
}

#[test]
fn star_and_plus_closures_match_oracle() {
    check_flat("PATTERN IBM; Sun*; Oracle WITHIN 15", 1, 0..6, &["IBM", "Sun", "Oracle"]);
    check_flat("PATTERN IBM; Sun+; Oracle WITHIN 15", 1, 0..6, &["IBM", "Sun", "Oracle"]);
}

#[test]
fn closure_with_aggregate_matches_oracle() {
    check_flat(
        "PATTERN IBM; Sun^2; Oracle WHERE sum(Sun.volume) > 80 WITHIN 30",
        1,
        0..6,
        &["IBM", "Sun", "Oracle"],
    );
}

#[test]
fn closure_with_event_predicate_matches_oracle() {
    check_flat(
        "PATTERN IBM; Sun^2; Oracle WHERE Sun.price > IBM.price WITHIN 25",
        1,
        0..6,
        &["IBM", "Sun", "Oracle"],
    );
}

#[test]
fn closure_with_tail_class_matches_oracle() {
    check_flat(
        "PATTERN IBM; Sun^2; Oracle; Google WITHIN 25",
        2,
        0..5,
        &["IBM", "Sun", "Oracle", "Google"],
    );
}

#[test]
fn leading_closure_matches_oracle() {
    check_flat("PATTERN Sun*; Oracle WITHIN 12", 1, 0..6, &["Sun", "Oracle"]);
}

#[test]
fn trailing_counted_closure_matches_oracle() {
    check_flat("PATTERN IBM; Sun^2 WITHIN 15", 1, 0..8, &["IBM", "Sun"]);
}

#[test]
fn conjunction_matches_oracle() {
    check_syntax("PATTERN IBM & Sun WITHIN 12", 0..8, &["IBM", "Sun"]);
}

#[test]
fn conjunction_with_predicate_matches_oracle() {
    check_syntax("PATTERN IBM & Sun WHERE IBM.price > Sun.price WITHIN 15", 0..6, &["IBM", "Sun"]);
}

#[test]
fn disjunction_matches_oracle() {
    check_syntax("PATTERN IBM | Sun WITHIN 10", 0..6, &["IBM", "Sun", "Oracle"]);
}

#[test]
fn sequence_of_disjunction_matches_oracle() {
    check_syntax("PATTERN (IBM | Sun); Oracle WITHIN 14", 0..8, &["IBM", "Sun", "Oracle"]);
}

#[test]
fn sequence_of_conjunction_matches_oracle() {
    check_syntax("PATTERN (IBM & Sun); Oracle WITHIN 14", 0..6, &["IBM", "Sun", "Oracle"]);
}

#[test]
fn conjunction_of_sequences_matches_oracle() {
    check_syntax(
        "PATTERN (IBM; Sun) & (Oracle; Google) WITHIN 16",
        0..5,
        &["IBM", "Sun", "Oracle", "Google"],
    );
}

#[test]
fn equality_routing_query1_style() {
    // Query 1 shape: equality between first and last classes plus price
    // bands, over aliases of the whole stream (no name routing).
    let src = "PATTERN T1; T2; T3 \
               WHERE T1.name = T3.name AND T2.name = 'Google' \
                 AND T1.price > T2.price AND T3.price < T2.price \
               WITHIN 18";
    for seed in 0..5 {
        let events = gen_stream(seed, 35, &["IBM", "Google", "Sun"]);
        let query = Query::parse(src).unwrap();
        let aq = zstream_lang::analyze(
            &query,
            &zstream_lang::SchemaMap::uniform(zstream_events::Schema::stocks()),
        )
        .unwrap();
        let intake = build_intake(&aq, None).unwrap();
        let expected = reference_signatures(&aq, &intake, &events);
        for shape in PlanShape::enumerate_all(3) {
            for hash in [true, false] {
                let mut engine = EngineBuilder::parse(src)
                    .unwrap()
                    .shape(shape.clone())
                    .config(EngineConfig {
                        batch_size: 4,
                        plan: PlanConfig { use_hash: hash, ..Default::default() },
                    })
                    .build()
                    .unwrap();
                let mut out = Vec::new();
                for e in &events {
                    out.extend(engine.push(e.clone()));
                }
                out.extend(engine.flush());
                let mut sigs: Vec<Signature> =
                    out.iter().map(|r| engine.record_signature(r)).collect();
                sigs.sort();
                sigs.dedup();
                assert_eq!(sigs, expected, "seed={seed} shape={shape} hash={hash}");
            }
        }
    }
}
