//! Walk-throughs of the paper's worked examples: the engine must reproduce
//! Figure 5 (NSEQ evaluation) and Figure 6 (KSEQ evaluation) event by event.

use zstream_core::{EngineBuilder, EngineConfig, NegStrategy};
use zstream_events::{stock, EventRef, Slot};

fn push_all(engine: &mut zstream_core::Engine, events: &[EventRef]) -> Vec<zstream_events::Record> {
    let mut out = Vec::new();
    for e in events {
        out.extend(engine.push(e.clone()));
    }
    out.extend(engine.flush());
    out
}

/// Figure 5: pattern `A; !B; C WITHIN tw` over
/// a1@1, b2@2, b3@3, a4@4, c5@5 — b3 negates c5, so only instances of A in
/// time range [3, 5) survive: the composite result is (a4, c5).
#[test]
fn figure5_nseq_walkthrough() {
    let mut engine = EngineBuilder::parse("PATTERN A; !B; C WITHIN 100")
        .unwrap()
        .stock_routing()
        .neg_strategy(NegStrategy::PushdownPreferred)
        .config(EngineConfig { batch_size: 1, ..Default::default() })
        .build()
        .unwrap();
    let a1 = stock(1, 1, "A", 1.0, 1);
    let b2 = stock(2, 2, "B", 1.0, 1);
    let b3 = stock(3, 3, "B", 1.0, 1);
    let a4 = stock(4, 4, "A", 1.0, 1);
    let c5 = stock(5, 5, "C", 1.0, 1);
    let out = push_all(&mut engine, &[a1, b2, b3, a4.clone(), c5.clone()]);
    assert_eq!(out.len(), 1, "exactly the composite (a4, c5)");
    let rec = &out[0];
    // Root record slots: [A, B, C] — A must be a4 and C must be c5.
    let a_slot = rec.slot(0).as_one().expect("A bound");
    assert!(a_slot.identity() == a4.identity());
    let c_slot = rec.slot(2).as_one().expect("C bound");
    assert!(c_slot.identity() == c5.identity());
}

/// Figure 5 continued: when no B interleaves at all, every prior A matches.
#[test]
fn figure5_without_negation_instance() {
    let mut engine = EngineBuilder::parse("PATTERN A; !B; C WITHIN 100")
        .unwrap()
        .stock_routing()
        .config(EngineConfig { batch_size: 1, ..Default::default() })
        .build()
        .unwrap();
    let out = push_all(
        &mut engine,
        &[stock(1, 1, "A", 1.0, 1), stock(4, 4, "A", 1.0, 1), stock(5, 5, "C", 1.0, 1)],
    );
    assert_eq!(out.len(), 2, "both a1 and a4 match c5");
}

/// Figure 6, left buffer: pattern `A; B*; C` over a1@1, b2@2, b3@3, a4@4,
/// b5@5, c6@6 — the unspecified-count results are
/// (a1, {b2,b3,b5}, c6) and (a4, {b5}, c6).
#[test]
fn figure6_kseq_unspecified_count() {
    let mut engine = EngineBuilder::parse("PATTERN A; B*; C WITHIN 100")
        .unwrap()
        .stock_routing()
        .config(EngineConfig { batch_size: 1, ..Default::default() })
        .build()
        .unwrap();
    let b2 = stock(2, 2, "B", 1.0, 1);
    let b3 = stock(3, 3, "B", 1.0, 1);
    let b5 = stock(5, 5, "B", 1.0, 1);
    let out = push_all(
        &mut engine,
        &[
            stock(1, 1, "A", 1.0, 1),
            b2.clone(),
            b3.clone(),
            stock(4, 4, "A", 1.0, 1),
            b5.clone(),
            stock(6, 6, "C", 1.0, 1),
        ],
    );
    assert_eq!(out.len(), 2);
    // Slots: [A, B-closure, C]; records sorted by (same) end ts — identify
    // by the A timestamp.
    let group_of = |a_ts: u64| -> Vec<u64> {
        let rec = out
            .iter()
            .find(|r| r.slot(0).as_one().map(|e| e.ts()) == Some(a_ts))
            .unwrap_or_else(|| panic!("no match anchored at a{a_ts}"));
        match rec.slot(1) {
            Slot::Many(events) => events.iter().map(|e| e.ts()).collect(),
            other => panic!("closure slot expected, got {other:?}"),
        }
    };
    assert_eq!(group_of(1), vec![2, 3, 5], "a1 groups the maximal b2,b3,b5");
    assert_eq!(group_of(4), vec![5], "a4 groups only b5");
}

/// Figure 6, right buffer: with closure count 2, after a1 and c6 are fixed
/// the groups are (b2, b3) and (b3, b5).
#[test]
fn figure6_kseq_count_two() {
    let mut engine = EngineBuilder::parse("PATTERN A; B^2; C WITHIN 100")
        .unwrap()
        .stock_routing()
        .config(EngineConfig { batch_size: 1, ..Default::default() })
        .build()
        .unwrap();
    let out = push_all(
        &mut engine,
        &[
            stock(1, 1, "A", 1.0, 1),
            stock(2, 2, "B", 1.0, 1),
            stock(3, 3, "B", 1.0, 1),
            stock(5, 5, "B", 1.0, 1),
            stock(6, 6, "C", 1.0, 1),
        ],
    );
    let mut groups: Vec<Vec<u64>> = out
        .iter()
        .map(|r| match r.slot(1) {
            Slot::Many(events) => events.iter().map(|e| e.ts()).collect(),
            other => panic!("closure slot expected, got {other:?}"),
        })
        .collect();
    groups.sort();
    assert_eq!(groups, vec![vec![2, 3], vec![3, 5]], "paper's Figure 6 right buffer");
}

/// §4.4.2's example predicate shape: `A; !B; C` where B only negates when
/// its price undercuts C's — Algorithm 2 skips non-qualifying B instances
/// when searching backward for the negating event.
#[test]
fn nseq_skips_nonqualifying_negation_instances() {
    let mut engine = EngineBuilder::parse("PATTERN A; !B; C WHERE B.price < C.price WITHIN 100")
        .unwrap()
        .stock_routing()
        .config(EngineConfig { batch_size: 1, ..Default::default() })
        .build()
        .unwrap();
    let out = push_all(
        &mut engine,
        &[
            stock(1, 1, "A", 1.0, 1),
            stock(2, 2, "B", 10.0, 1), // qualifies (10 < 50): negates
            stock(3, 3, "B", 90.0, 1), // does not qualify (90 >= 50)
            stock(4, 4, "A", 1.0, 1),
            stock(5, 5, "C", 50.0, 1),
        ],
    );
    // b@2 negates c@5, so a@1 is blocked; b@3 is ignored; a@4 survives
    // (a4.end=4 >= b2.ts=2).
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].slot(0).as_one().unwrap().ts(), 4);
}

/// Query 1's duration semantics (§3): the *total* composite duration must
/// respect WITHIN, not just adjacent gaps.
#[test]
fn composite_duration_bounded_by_window() {
    let mut engine = EngineBuilder::parse("PATTERN A; B; C WITHIN 10")
        .unwrap()
        .stock_routing()
        .config(EngineConfig { batch_size: 1, ..Default::default() })
        .build()
        .unwrap();
    // Adjacent gaps of 6+6 = total 12 > 10: no match even though each
    // consecutive pair is within the window.
    let out = push_all(
        &mut engine,
        &[stock(0, 1, "A", 1.0, 1), stock(6, 2, "B", 1.0, 1), stock(12, 3, "C", 1.0, 1)],
    );
    assert!(out.is_empty());
}

/// Strict sequencing: `A.end-ts < B.start-ts` (§3.1) — simultaneous events
/// do not chain.
#[test]
fn simultaneous_events_do_not_chain() {
    let mut engine = EngineBuilder::parse("PATTERN A; B WITHIN 10")
        .unwrap()
        .stock_routing()
        .config(EngineConfig { batch_size: 1, ..Default::default() })
        .build()
        .unwrap();
    let out = push_all(&mut engine, &[stock(5, 1, "A", 1.0, 1), stock(5, 2, "B", 1.0, 1)]);
    assert!(out.is_empty());
}
