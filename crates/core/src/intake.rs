//! Compiled intake predicates and the cross-query shared predicate index.
//!
//! The §4.1 push-down compiles each single-class intake predicate into a
//! column-kernel form ([`IntakePred`]) that evaluates over a whole batch
//! column into a bitmap. Within one engine, distinct predicates are
//! deduplicated so each evaluates once per batch no matter how many classes
//! share it.
//!
//! [`SharedPredIndex`] lifts that dedup across *queries*: a service hosting
//! thousands of standing queries registers every engine's compiled intake
//! here, keyed by the same conjunct identity ([`IntakePred::kernel_key`]),
//! and each distinct column predicate evaluates **once per batch per
//! shard** into a shared bitmap that fans out to every subscriber engine's
//! selection. Sharing is sound because a kernel predicate reads only its
//! batch column — its bitmap does not depend on which query (or class)
//! requested it, the same argument that already justifies the per-engine
//! cross-class dedup.
//!
//! This module is on the per-event hot path (zlint `locks` applies): the
//! per-batch work is bitmap AND/popcount plus one `HashMap`-free slot
//! lookup per engine predicate — registration (the only map access) happens
//! on the cold create/build path.

use std::collections::HashMap;

use zstream_events::kernel::{filter_cmp, filter_str_eq, Bitmap, CmpOp};
use zstream_events::{EventBatch, EventRef, HashableValue, Sym, Value};
use zstream_lang::{BinOp, ClassId, EventBinding, TypedExpr};

/// Binding of a single event to a single class (intake predicates).
pub(crate) struct OneClassBinding<'a> {
    pub(crate) class: ClassId,
    pub(crate) event: &'a EventRef,
}

impl EventBinding for OneClassBinding<'_> {
    fn event(&self, class: ClassId) -> Option<&EventRef> {
        (class == self.class).then_some(self.event)
    }

    fn closure(&self, class: ClassId) -> &[EventRef] {
        if class == self.class {
            std::slice::from_ref(self.event)
        } else {
            &[]
        }
    }
}

/// One intake predicate compiled for column-wise evaluation. The compiled
/// forms are *exactly* equivalent to evaluating the original [`TypedExpr`]
/// per event — they only skip the expression-tree walk.
#[derive(Debug, Clone)]
pub(crate) enum IntakePred {
    /// `Attr = 'lit'` over a string column: a symbol-id compare per row.
    StrEq {
        /// Field (column) index within the class schema.
        field: usize,
        /// Interned literal.
        sym: Sym,
    },
    /// `Attr op lit` (either operand order, op flipped accordingly): one
    /// column read plus a [`Value::compare`] per row.
    CmpLit {
        /// Field (column) index within the class schema.
        field: usize,
        /// Comparison operator (Eq/Ne/Lt/Le/Gt/Ge).
        op: BinOp,
        /// Literal operand.
        lit: Value,
    },
    /// Anything else: evaluate the expression per row against a one-class
    /// binding (the same code path the per-event intake uses).
    General(TypedExpr),
}

impl IntakePred {
    /// Compiles one single-class intake expression.
    pub(crate) fn compile(expr: &TypedExpr) -> IntakePred {
        if let TypedExpr::Binary(op, l, r) = expr {
            let flipped = |op: BinOp| match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            };
            let lit_cmp = |field: usize, op: BinOp, lit: &Value| match (op, lit) {
                (BinOp::Eq, Value::Str(sym)) => IntakePred::StrEq { field, sym: *sym },
                (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _) => {
                    IntakePred::CmpLit { field, op, lit: *lit }
                }
                _ => IntakePred::General(expr.clone()),
            };
            match (l.as_ref(), r.as_ref()) {
                (TypedExpr::Attr { field, .. }, TypedExpr::Lit(v)) => {
                    return lit_cmp(*field, *op, v);
                }
                (TypedExpr::Lit(v), TypedExpr::Attr { field, .. }) => {
                    return lit_cmp(*field, flipped(*op), v);
                }
                _ => {}
            }
        }
        IntakePred::General(expr.clone())
    }

    /// True when the original expression would evaluate to `Bool(true)` for
    /// `row` of `batch` bound to `class`.
    #[inline]
    pub(crate) fn passes(&self, batch: &EventBatch, row: usize, class: ClassId) -> bool {
        match self {
            IntakePred::StrEq { field, sym } => batch.column(*field).sym_at(row) == Some(*sym),
            IntakePred::CmpLit { field, op, lit } => {
                cmp_passes(*op, batch.column(*field).value(row), lit)
            }
            IntakePred::General(expr) => {
                let event = batch.event(row);
                let binding = OneClassBinding { class, event: &event };
                matches!(expr.eval(&binding), Ok(Value::Bool(true)))
            }
        }
    }

    /// Dedup key for column-kernel predicates: two intake predicates with
    /// equal keys decide identically on every row of any batch (`StrEq`
    /// compares interned ids; `CmpLit` literals canonicalize via
    /// [`Value::hash_key`], which agrees exactly with [`Value::loose_eq`]).
    /// `General` predicates never share (their semantics depend on the
    /// bound class). The key reads only batch *columns*, never the bound
    /// class or schema, which is what makes cross-query sharing in
    /// [`SharedPredIndex`] sound.
    pub(crate) fn kernel_key(&self) -> Option<(u8, usize, HashableValue)> {
        match self {
            IntakePred::StrEq { field, sym } => Some((0, *field, HashableValue::Str(*sym))),
            IntakePred::CmpLit { field, op, lit } => {
                let tag = match op {
                    BinOp::Eq => 1,
                    BinOp::Ne => 2,
                    BinOp::Lt => 3,
                    BinOp::Le => 4,
                    BinOp::Gt => 5,
                    BinOp::Ge => 6,
                    _ => return None,
                };
                Some((tag, *field, lit.hash_key()))
            }
            IntakePred::General(_) => None,
        }
    }

    /// Evaluates a column-kernel predicate over the whole column into `out`.
    /// Only called for `StrEq`/`CmpLit` (the variants with a
    /// [`IntakePred::kernel_key`]).
    pub(crate) fn eval_column(&self, batch: &EventBatch, out: &mut Bitmap) {
        match self {
            IntakePred::StrEq { field, sym } => filter_str_eq(batch.column(*field), *sym, out),
            IntakePred::CmpLit { field, op, lit } => {
                filter_cmp(batch.column(*field), kernel_op(*op), lit, out);
            }
            IntakePred::General(_) => unreachable!("general predicates evaluate row-wise"),
        }
    }
}

/// Maps the language's comparison operators onto the kernel layer's
/// (`crates/events` sits below the language and defines its own enum).
pub(crate) fn kernel_op(op: BinOp) -> CmpOp {
    match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        other => unreachable!("compiled ops are comparisons, got {other:?}"),
    }
}

/// Comparison semantics identical to `TypedExpr::Binary(op, Attr, Lit)`
/// evaluation: `Eq`/`Ne` via loose equality, orderings via exact
/// [`Value::compare`]; incomparable types fail closed.
#[inline]
pub(crate) fn cmp_passes(op: BinOp, v: Value, lit: &Value) -> bool {
    use std::cmp::Ordering;
    match op {
        BinOp::Eq => v.loose_eq(lit),
        BinOp::Ne => !v.loose_eq(lit),
        _ => match v.compare(lit) {
            Ok(ord) => match op {
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!("compiled ops are comparisons"),
            },
            Err(_) => false,
        },
    }
}

/// How [`crate::Engine::push_columns`] / [`crate::Engine::push_rows`]
/// evaluate intake predicates. The two paths are semantically identical
/// (the differential suite pins this); the knob exists for tests and
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntakeMode {
    /// Whole-column kernels for full batches and dense selections;
    /// row-at-a-time for sparse selections (partitioned intake routes one
    /// small selection per key — scanning the full column per key would be
    /// O(batch × keys)).
    #[default]
    Auto,
    /// Always evaluate via column kernels into bitmaps.
    Kernel,
    /// Always evaluate row-at-a-time (the pre-kernel path).
    Rows,
}

/// Reusable bitmap scratch for vectorized intake (satellite of the kernel
/// layer: Phase 1 used to allocate a fresh `Vec<u32>` per predicate per
/// class per batch).
///
/// **Invariant:** contents are meaningful only *within* one
/// `route_columns` call — between calls the bitmaps hold stale bits of the
/// previous batch, so every use inside the call must start from
/// `Bitmap::reset` (or a full overwrite by a filter kernel), never read
/// carried-over state. `pred_done` is what makes the per-batch predicate
/// cache sound: it is cleared at the top of every kernel-path call.
#[derive(Debug, Default)]
pub(crate) struct IntakeScratch {
    /// Per-class accumulator: AND of the class's predicate bitmaps over the
    /// input rows.
    pub(crate) acc: Bitmap,
    /// Union of all class accumulators — `events_admitted` is its popcount.
    pub(crate) union: Bitmap,
    /// One cached bitmap per distinct column predicate (indexed like
    /// `Engine::uniq_preds`), evaluated lazily per batch.
    pub(crate) pred: Vec<Bitmap>,
    /// Which `pred` entries are valid for the batch currently being routed.
    pub(crate) pred_done: Vec<bool>,
}

/// Cross-query shared predicate index: each *distinct* column-kernel
/// predicate across every registered query evaluates once per batch into a
/// bitmap that all subscriber engines AND into their selections.
///
/// The index stores no predicates — only the identity map from
/// [`IntakePred::kernel_key`] to a bitmap slot. The first engine that needs
/// a slot in a batch evaluates its own compiled predicate into the shared
/// bitmap (predicates with equal keys decide identically on every row, so
/// *which* engine's copy runs is unobservable); later engines reuse the
/// bitmap for free. Callers mark batch boundaries with
/// [`SharedPredIndex::begin_batch`].
///
/// One index serves one evaluation thread (in the sharded runtime: one per
/// shard, owned by the shard loop) — no locking, per the hot-path rule.
#[derive(Debug, Default)]
pub struct SharedPredIndex {
    /// Conjunct identity → bitmap slot. Touched only at registration.
    slots: HashMap<(u8, usize, HashableValue), u32>,
    /// One shared bitmap per distinct predicate.
    pred: Vec<Bitmap>,
    /// Which bitmaps are valid for the batch currently being evaluated.
    done: Vec<bool>,
}

impl SharedPredIndex {
    /// An empty index.
    pub fn new() -> SharedPredIndex {
        SharedPredIndex::default()
    }

    /// Registers one query's per-class intake predicates and returns the
    /// query's **subscription**: for each of the engine's distinct
    /// column-kernel predicates (in the engine's own dedup order — classes
    /// in order, predicates in order, first appearance of each key), the
    /// shared bitmap slot to read. Feed the result to
    /// [`crate::Engine::set_shared_slots`].
    ///
    /// Registration is idempotent per key: queries sharing conjuncts map to
    /// the same slot, which is the whole point. Dropped queries' slots stay
    /// allocated (a slot is one `Bitmap` — negligible; reclaiming would
    /// re-index every live subscription).
    pub fn register(&mut self, intake: &[Vec<TypedExpr>]) -> Vec<u32> {
        let mut local: HashMap<(u8, usize, HashableValue), ()> = HashMap::new();
        let mut subscription = Vec::new();
        for preds in intake {
            for expr in preds {
                let Some(key) = IntakePred::compile(expr).kernel_key() else { continue };
                if local.insert(key, ()).is_some() {
                    continue;
                }
                let next = self.pred.len() as u32;
                let slot = *self.slots.entry(key).or_insert(next);
                if slot == next {
                    self.pred.push(Bitmap::new());
                    self.done.push(false);
                }
                subscription.push(slot);
            }
        }
        subscription
    }

    /// Marks a batch boundary: every shared bitmap becomes stale and the
    /// next engine to need it re-evaluates. Call once per incoming batch,
    /// before any subscriber engine runs.
    pub fn begin_batch(&mut self) {
        self.done.iter_mut().for_each(|d| *d = false);
    }

    /// Number of distinct predicates registered.
    pub fn num_slots(&self) -> usize {
        self.pred.len()
    }

    /// The shared bitmap for `slot`, evaluating `pred` into it first if no
    /// engine has needed it yet this batch. Returns the bitmap and whether
    /// this call paid the evaluation (for the caller's rows-evaluated
    /// accounting).
    #[inline]
    pub(crate) fn bitmap_for(
        &mut self,
        slot: u32,
        pred: &IntakePred,
        batch: &EventBatch,
    ) -> (&Bitmap, bool) {
        let s = slot as usize;
        let evaluated = if self.done[s] {
            false
        } else {
            pred.eval_column(batch, &mut self.pred[s]);
            self.done[s] = true;
            true
        };
        (&self.pred[s], evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineBuilder;

    fn intake_of(src: &str) -> Vec<Vec<TypedExpr>> {
        let parts = EngineBuilder::parse(src).unwrap().stock_routing().compile().unwrap();
        parts.intake.clone()
    }

    #[test]
    fn overlapping_queries_share_slots() {
        let mut idx = SharedPredIndex::new();
        let a = idx.register(&intake_of("PATTERN IBM; Sun WITHIN 10"));
        let b = idx.register(&intake_of("PATTERN IBM; Oracle WITHIN 10"));
        // Both queries carry the name='IBM' conjunct: the slot is shared.
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(a[0], b[0]);
        assert_ne!(a[1], b[1]);
        assert_eq!(idx.num_slots(), 3);
    }

    #[test]
    fn identical_queries_collapse_to_one_slot_set() {
        let mut idx = SharedPredIndex::new();
        let a = idx.register(&intake_of("PATTERN IBM; Sun WITHIN 10"));
        let b = idx.register(&intake_of("PATTERN IBM; Sun WITHIN 10"));
        assert_eq!(a, b);
        assert_eq!(idx.num_slots(), 2);
    }

    #[test]
    fn subscription_matches_engine_dedup_order() {
        // A query whose classes repeat a conjunct (`price > 10` appears in
        // both classes' intake): the subscription has one entry per
        // *distinct* key, in first-appearance order — the same order
        // `Engine::new` assigns its local uniq indexes.
        let mut idx = SharedPredIndex::new();
        let sub = idx.register(&intake_of(
            "PATTERN IBM; Sun WHERE IBM.price > 10 AND Sun.price > 10 WITHIN 10",
        ));
        // Distinct keys: name='IBM', price>10, name='Sun' — the repeated
        // price conjunct collapses to one subscription entry.
        assert_eq!(sub.len(), 3);
        assert_eq!(idx.num_slots(), 3);
    }
}
