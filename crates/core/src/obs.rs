//! Engine-side observability wiring.
//!
//! [`EngineObs`] bundles the instrument handles one engine (or one shard's
//! worth of partition engines) records into. Handles are registered once
//! per worker thread — each registration owns private atomic cells, so
//! engines on different shards never contend — and cloning an `EngineObs`
//! *shares* its cells, which is exactly what [`crate::PartitionedEngine`]
//! wants: all per-key engines inside one shard fold into the same cells.
//!
//! An engine without an `EngineObs` attached (the default) records
//! nothing and pays nothing: every hook is behind an `Option` check.

use std::sync::Arc;

use zstream_obs::{labels, Counter, Histogram, Obs, TraceKind, TraceRing};

/// Instrument handles for one engine's hot path.
#[derive(Debug, Clone)]
pub struct EngineObs {
    /// `zstream_query_admitted_total{query}` — events admitted into at
    /// least one leaf buffer after intake predicates.
    pub admitted: Counter,
    /// `zstream_query_matched_total{query}` — composite matches emitted.
    pub matched: Counter,
    /// `zstream_engine_round_ns{query}` — wall time of non-idle assembly
    /// rounds (§4.3), nanoseconds.
    pub round_ns: Histogram,
    /// `zstream_kernel_rows_evaluated_total{query}` — rows covered by
    /// columnar filter-kernel evaluations (batch length × distinct
    /// predicates evaluated per batch).
    pub kernel_rows_evaluated: Counter,
    /// `zstream_kernel_fallback_rows_total{query}` — rows that went through
    /// a row-at-a-time intake path instead of a kernel: per-event routing,
    /// sparse selections, and `General` predicates with no columnar kernel.
    pub kernel_fallback_rows: Counter,
    /// Trace ring for batch-level `assembly_round` events; `None`
    /// disables tracing while keeping the counters.
    pub trace: Option<Arc<TraceRing>>,
    /// Query label (e.g. `"q0"`).
    pub query: String,
    /// Shard id for trace events, when shard-scoped.
    pub shard: Option<u32>,
}

impl EngineObs {
    /// Registers this worker's cells under `query` in `hub`'s registry.
    /// Call once per worker thread; clones share the registered cells.
    pub fn register(
        hub: &Obs,
        query: &str,
        shard: Option<u32>,
        trace: Option<Arc<TraceRing>>,
    ) -> EngineObs {
        let l = labels(&[("query", query)]);
        EngineObs {
            admitted: hub.metrics.counter("zstream_query_admitted_total", l.clone()),
            matched: hub.metrics.counter("zstream_query_matched_total", l.clone()),
            round_ns: hub.metrics.histogram("zstream_engine_round_ns", l.clone()),
            kernel_rows_evaluated: hub
                .metrics
                .counter("zstream_kernel_rows_evaluated_total", l.clone()),
            kernel_fallback_rows: hub.metrics.counter("zstream_kernel_fallback_rows_total", l),
            trace,
            query: query.to_string(),
            shard,
        }
    }

    /// Records one completed assembly round: duration, matches, and a
    /// batch-level trace event.
    pub(crate) fn record_round(&self, watermark: u64, elapsed_ns: u64, matches: u64) {
        self.round_ns.observe(elapsed_ns);
        self.matched.add(matches);
        if let Some(trace) = &self.trace {
            trace.emit(
                watermark,
                self.shard,
                Some(&self.query),
                TraceKind::AssemblyRound,
                format!("matches={matches} ns={elapsed_ns}"),
            );
        }
    }
}
