//! Core errors: plan construction and execution.

use std::fmt;

use zstream_lang::LangError;

/// Errors raised while planning or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A language-level error (parsing or analysis).
    Lang(LangError),
    /// The pattern shape is not supported by the requested plan strategy.
    UnsupportedPattern(String),
    /// A plan shape does not match the pattern's unit count.
    ShapeMismatch {
        /// Units in the pattern.
        expected: usize,
        /// Leaves in the provided shape.
        found: usize,
    },
    /// A negation was placed where no evaluation strategy exists.
    UnsupportedNegation(String),
    /// A Kleene closure was placed where no evaluation strategy exists.
    UnsupportedClosure(String),
    /// Statistics vector length does not match the class count.
    BadStatistics(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lang(e) => write!(f, "{e}"),
            CoreError::UnsupportedPattern(s) => write!(f, "unsupported pattern: {s}"),
            CoreError::ShapeMismatch { expected, found } => {
                write!(f, "plan shape has {found} leaves but the pattern has {expected} units")
            }
            CoreError::UnsupportedNegation(s) => write!(f, "unsupported negation: {s}"),
            CoreError::UnsupportedClosure(s) => write!(f, "unsupported closure: {s}"),
            CoreError::BadStatistics(s) => write!(f, "bad statistics: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<LangError> for CoreError {
    fn from(e: LangError) -> Self {
        CoreError::Lang(e)
    }
}
