//! Stream hash partitioning (§4.1, Figures 3 and 4).
//!
//! When every class of a pattern is connected by equality predicates on one
//! attribute (Query 2: `T1.name = T2.name = T3.name`; Query 8: same IP),
//! ZStream hash-partitions the incoming stream on that attribute and
//! evaluates the pattern independently per partition: *"Hash Partitioning
//! is performed on the incoming stock stream to apply the equality
//! predicates on stock.name."*
//!
//! [`PartitionedEngine`] wraps one [`Engine`] per observed key, routing
//! events by their partition attribute. [`can_partition_by`] verifies the
//! soundness condition: the query's equality predicates must connect **all**
//! classes (including negated and closure classes) on the partition field,
//! so that no cross-partition match can exist.

use std::collections::HashMap;
use std::sync::Arc;

use zstream_events::{
    EventBatch, EventRef, HashableValue, Record, Snapshot, SnapshotError, SnapshotReader,
    SnapshotResult, SnapshotWriter,
};
use zstream_lang::{AnalyzedQuery, TypedExpr};

use crate::builder::CompiledQuery;
use crate::engine::Engine;
use crate::error::CoreError;
use crate::intake::SharedPredIndex;
use crate::metrics::EngineMetrics;
use crate::physical::plan::PlanConfig;

/// True when partitioning the stream on `field` preserves the query's
/// semantics. Two conditions must hold:
///
/// 1. every pair of **non-negated** classes is linked (transitively) by
///    equality predicates on `field` *between non-negated classes* — a chain
///    routed through a negated class does not constrain a match when no
///    negation instance occurs, so it cannot justify partitioning,
/// 2. every **negated** class has a direct equality on `field` to some
///    non-negated class — otherwise an event in another partition could
///    legitimately negate a match and per-partition evaluation would miss
///    it.
pub fn can_partition_by(aq: &AnalyzedQuery, field: &str) -> bool {
    let n = aq.num_classes();
    if n == 0 {
        return false;
    }
    // Resolve the field index per class; every class must have the field.
    let field_idx: Vec<Option<usize>> =
        aq.classes.iter().map(|c| c.schema.field_index(field).ok()).collect();
    if field_idx.iter().any(Option::is_none) {
        return false;
    }
    let negated: Vec<bool> = aq.classes.iter().map(|c| c.negated).collect();
    // Union-find over non-negated classes joined on the partition field.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut neg_anchored = vec![false; n];
    for eq in &aq.equalities {
        let ((c1, f1), (c2, f2)) = (eq.left, eq.right);
        if field_idx[c1] != Some(f1) || field_idx[c2] != Some(f2) {
            continue;
        }
        match (negated[c1], negated[c2]) {
            (false, false) => {
                let (r1, r2) = (find(&mut parent, c1), find(&mut parent, c2));
                parent[r1] = r2;
            }
            (true, false) => neg_anchored[c1] = true,
            (false, true) => neg_anchored[c2] = true,
            (true, true) => {}
        }
    }
    let positives: Vec<usize> = (0..n).filter(|c| !negated[*c]).collect();
    let Some(&first) = positives.first() else { return false };
    let root = find(&mut parent, first);
    positives.iter().all(|c| find(&mut parent, *c) == root)
        && (0..n).filter(|c| negated[*c]).all(|c| neg_anchored[c])
}

/// A pattern engine evaluated independently per partition key.
#[derive(Debug)]
pub struct PartitionedEngine {
    // zlint::allow(snapshot, "restore_snapshot receives the compiled query from the caller; not checkpoint state")
    compiled: CompiledQuery,
    // zlint::allow(snapshot, "restore_snapshot receives the plan config from the caller; not checkpoint state")
    plan_config: PlanConfig,
    // zlint::allow(snapshot, "restore_snapshot receives the intake predicates from the caller; not checkpoint state")
    intake: Vec<Vec<TypedExpr>>,
    // zlint::allow(snapshot, "restore_snapshot receives the batch size from the caller; not checkpoint state")
    batch_size: usize,
    /// Field index of the partition attribute per class schema — all class
    /// schemas must agree on the field name; events are keyed through the
    /// first class's schema (events that match no schema are dropped).
    // zlint::allow(snapshot, "restore_snapshot receives the partition field from the caller; not checkpoint state")
    field: String,
    partitions: HashMap<HashableValue, Engine>,
    /// Intake-path choice stamped onto every partition engine (existing and
    /// future); see [`Engine::set_intake_mode`].
    // zlint::allow(snapshot, "configuration re-stamped via set_intake_mode after restore, not checkpoint state")
    intake_mode: crate::engine::IntakeMode,
    /// Shared-index subscription stamped onto every partition engine
    /// (existing and future); see [`Engine::set_shared_slots`].
    // zlint::allow(snapshot, "wiring re-stamped via set_shared_slots after restore, not checkpoint state")
    shared_slots: Option<Arc<Vec<u32>>>,
    events_in: u64,
    dropped: u64,
    /// Instrument template cloned into each partition engine (cells are
    /// shared across partitions; see [`PartitionedEngine::set_obs`]).
    // zlint::allow(snapshot, "instruments are process-local handles, re-attached via set_obs after restore")
    obs: Option<crate::obs::EngineObs>,
}

impl PartitionedEngine {
    /// Creates a partitioned engine. Fails when partitioning on `field` is
    /// not sound for this query (see [`can_partition_by`]).
    pub fn new(
        compiled: CompiledQuery,
        plan_config: PlanConfig,
        intake: Vec<Vec<TypedExpr>>,
        batch_size: usize,
        field: impl Into<String>,
    ) -> Result<PartitionedEngine, CoreError> {
        let field = field.into();
        if !can_partition_by(&compiled.aq, &field) {
            return Err(CoreError::UnsupportedPattern(format!(
                "cannot partition on '{field}': equality predicates do not connect \
                 all classes on that field"
            )));
        }
        Ok(PartitionedEngine {
            compiled,
            plan_config,
            intake,
            batch_size,
            field,
            partitions: HashMap::new(),
            intake_mode: crate::engine::IntakeMode::default(),
            shared_slots: None,
            events_in: 0,
            dropped: 0,
            obs: None,
        })
    }

    /// The analyzed query.
    pub fn analyzed(&self) -> &Arc<AnalyzedQuery> {
        &self.compiled.aq
    }

    /// Number of partitions materialized so far.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Overrides the intake-path choice for every partition engine, existing
    /// and future (default [`crate::engine::IntakeMode::Auto`]).
    pub fn set_intake_mode(&mut self, mode: crate::engine::IntakeMode) {
        self.intake_mode = mode;
        for engine in self.partitions.values_mut() {
            engine.set_intake_mode(mode);
        }
    }

    /// Subscribes every partition engine (existing and future) to a
    /// [`SharedPredIndex`]; `slots` must come from registering this query's
    /// intake predicates (see [`Engine::set_shared_slots`]). Shared bitmaps
    /// then also memoize *across partition keys* within one batch, not just
    /// across queries.
    pub fn set_shared_slots(&mut self, slots: Arc<Vec<u32>>) {
        for engine in self.partitions.values_mut() {
            engine.set_shared_slots(slots.clone());
        }
        self.shared_slots = Some(slots);
    }

    /// Pushes one event into its partition; returns completed matches.
    pub fn push(&mut self, event: EventRef) -> Vec<Record> {
        self.events_in += 1;
        let Ok(value) = event.value_by_name(&self.field) else {
            self.dropped += 1;
            return Vec::new();
        };
        let key = value.hash_key();
        self.partition_mut(key).push(event)
    }

    /// Routes a whole batch and forces one evaluation round in every
    /// partition that received events, so no match whose trigger is in
    /// `events` stays buffered past this call. This is the latency/finality
    /// guarantee the scale-out runtime's watermark protocol relies on: after
    /// `push_batch` returns, every future match has an end timestamp no
    /// earlier than the last timestamp of `events`.
    ///
    /// Output is ordered by end timestamp across partitions (ties keep the
    /// first-seen-key partition order), so it is deterministic for a given
    /// input stream.
    pub fn push_batch(&mut self, events: &[EventRef]) -> Vec<Record> {
        // Group by key, preserving both intra-key event order and the
        // first-seen order of keys (HashMap iteration order would be
        // nondeterministic).
        let mut order: Vec<HashableValue> = Vec::new();
        let mut groups: HashMap<HashableValue, Vec<EventRef>> = HashMap::new();
        for event in events {
            self.events_in += 1;
            let Ok(value) = event.value_by_name(&self.field) else {
                self.dropped += 1;
                continue;
            };
            let key = value.hash_key();
            match groups.get_mut(&key) {
                Some(group) => group.push(event.clone()),
                None => {
                    order.push(key);
                    groups.insert(key, vec![event.clone()]);
                }
            }
        }
        let mut out = Vec::new();
        for key in order {
            let group = groups.remove(&key).expect("grouped above");
            out.extend(self.partition_mut(key).push_batch(&group));
        }
        // Stable: ties keep first-seen-key partition order.
        out.sort_by_key(Record::end_ts);
        out
    }

    /// Columnar variant of [`PartitionedEngine::push_batch`]: extracts the
    /// partition key from the routing column (one field resolution per
    /// batch, integer keys throughout) and hands each partition its rows as
    /// cheap handles. Output ordering and round-forcing semantics are
    /// identical to `push_batch` over the same rows.
    pub fn push_columns(&mut self, batch: &EventBatch) -> Vec<Record> {
        self.push_columns_shared(batch, None)
    }

    /// [`PartitionedEngine::push_columns`] with an optional
    /// [`SharedPredIndex`] (see [`Engine::push_columns_shared`]).
    pub fn push_columns_shared(
        &mut self,
        batch: &EventBatch,
        shared: Option<&mut SharedPredIndex>,
    ) -> Vec<Record> {
        let n = batch.len();
        self.events_in += n as u64;
        let Ok(field_idx) = batch.schema().field_index(&self.field) else {
            self.dropped += n as u64;
            return Vec::new();
        };
        self.push_selected(batch, field_idx, 0..n as u32, shared)
    }

    /// Selection-vector variant of [`PartitionedEngine::push_columns`]: the
    /// shard form of columnar intake. `rows` are ascending indices into
    /// `batch` (the subset this engine owns after shard routing); only those
    /// rows are keyed, grouped and evaluated — the batch itself is shared
    /// storage and is never copied. Semantics are identical to
    /// `push_columns` over a batch containing exactly the selected rows.
    pub fn push_rows(&mut self, batch: &EventBatch, rows: &[u32]) -> Vec<Record> {
        self.push_rows_shared(batch, rows, None)
    }

    /// [`PartitionedEngine::push_rows`] with an optional
    /// [`SharedPredIndex`] (see [`Engine::push_rows_shared`]).
    pub fn push_rows_shared(
        &mut self,
        batch: &EventBatch,
        rows: &[u32],
        shared: Option<&mut SharedPredIndex>,
    ) -> Vec<Record> {
        self.events_in += rows.len() as u64;
        let Ok(field_idx) = batch.schema().field_index(&self.field) else {
            self.dropped += rows.len() as u64;
            return Vec::new();
        };
        self.push_selected(batch, field_idx, rows.iter().copied(), shared)
    }

    /// Shared tail of the columnar intake paths: group the given rows by
    /// partition key (first-seen key order, intra-key stream order), hand
    /// each partition its row selection (forcing a round per receiving
    /// partition), and emit in end-timestamp order. Groups hold 4-byte row
    /// indices, not event handles — the batch stays shared storage all the
    /// way into each partition's [`Engine::push_rows`].
    fn push_selected(
        &mut self,
        batch: &EventBatch,
        field_idx: usize,
        rows: impl Iterator<Item = u32>,
        mut shared: Option<&mut SharedPredIndex>,
    ) -> Vec<Record> {
        let col = batch.column(field_idx);
        let mut order: Vec<HashableValue> = Vec::new();
        let mut groups: HashMap<HashableValue, Vec<u32>> = HashMap::new();
        for row in rows {
            let key = col.value(row as usize).hash_key();
            match groups.get_mut(&key) {
                Some(group) => group.push(row),
                None => {
                    order.push(key);
                    groups.insert(key, vec![row]);
                }
            }
        }
        let mut out = Vec::new();
        for key in order {
            let group = groups.remove(&key).expect("grouped above");
            out.extend(self.partition_mut(key).push_rows_shared(
                batch,
                &group,
                shared.as_deref_mut(),
            ));
        }
        out.sort_by_key(Record::end_ts);
        out
    }

    /// The engine owning `key`, created from the compiled template on first
    /// sight.
    fn partition_mut(&mut self, key: HashableValue) -> &mut Engine {
        if !self.partitions.contains_key(&key) {
            let plan = self
                .compiled
                .physical_plan(self.plan_config.clone())
                .expect("template plan was validated at construction");
            let mut engine =
                Engine::new(self.compiled.aq.clone(), plan, self.intake.clone(), self.batch_size);
            engine.set_intake_mode(self.intake_mode);
            if let Some(slots) = &self.shared_slots {
                engine.set_shared_slots(slots.clone());
            }
            if let Some(obs) = &self.obs {
                engine.set_obs(obs.clone());
            }
            self.partitions.insert(key, engine);
        }
        self.partitions.get_mut(&key).expect("inserted above")
    }

    /// Flushes every partition.
    pub fn flush(&mut self) -> Vec<Record> {
        let mut out = Vec::new();
        for engine in self.partitions.values_mut() {
            out.extend(engine.flush());
        }
        // Global end-ts order across partitions for deterministic output.
        out.sort_by_key(Record::end_ts);
        out
    }

    /// Aggregated metrics: per-partition counters folded together with
    /// [`EngineMetrics::merge`]; `peak_bytes` is the sum of per-partition
    /// peaks (an upper bound on the true simultaneous peak). `events_in`
    /// counts every event offered to this engine, including ones dropped
    /// for lacking the partition attribute. Process-global stats are left
    /// unstamped (see [`EngineMetrics::merge`] — they belong to the final
    /// report, not per-engine snapshots).
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = EngineMetrics::default();
        for e in self.partitions.values() {
            m.merge(&e.metrics());
        }
        m.events_in = self.events_in;
        m
    }

    /// Attaches observability instruments. Every existing and future
    /// partition engine records into clones of the same handles — the
    /// cells are shared, so per-query totals fold across partition keys
    /// without extra registry entries.
    pub fn set_obs(&mut self, obs: crate::obs::EngineObs) {
        for e in self.partitions.values_mut() {
            e.set_obs(obs.clone());
        }
        self.obs = Some(obs);
    }

    /// Signature of a record (delegates to any partition's engine — the
    /// plan layout is identical across partitions).
    pub fn record_signature(&self, rec: &Record) -> Vec<Vec<usize>> {
        self.partitions.values().next().map(|e| e.record_signature(rec)).unwrap_or_default()
    }

    /// Rebuilds a partitioned engine from a [`Snapshot`] stream. The
    /// compiled query, plan configuration, intake predicates, batch size
    /// and partition field must match what the snapshotted engine ran —
    /// checkpoints carry state, not code.
    pub fn restore_snapshot(
        compiled: CompiledQuery,
        plan_config: PlanConfig,
        intake: Vec<Vec<TypedExpr>>,
        batch_size: usize,
        field: impl Into<String>,
        r: &mut SnapshotReader<'_>,
    ) -> SnapshotResult<PartitionedEngine> {
        let mut pe = PartitionedEngine::new(compiled, plan_config, intake, batch_size, field)
            .map_err(|e| SnapshotError::Corrupt(format!("invalid partition template: {e}")))?;
        pe.events_in = r.u64()?;
        pe.dropped = r.u64()?;
        let n = r.len()?;
        for _ in 0..n {
            let key = r.hashable()?;
            let plan = pe
                .compiled
                .physical_plan(pe.plan_config.clone())
                .map_err(|e| SnapshotError::Corrupt(format!("plan rebuild failed: {e}")))?;
            let engine = Engine::restore_snapshot(
                pe.compiled.aq.clone(),
                plan,
                pe.intake.clone(),
                pe.batch_size,
                r,
            )?;
            if pe.partitions.insert(key, engine).is_some() {
                return Err(SnapshotError::Corrupt(format!("duplicate partition key {key:?}")));
            }
        }
        Ok(pe)
    }
}

impl Snapshot for PartitionedEngine {
    /// Serializes the offered/dropped counters and every partition's engine,
    /// keyed by partition key. Partitions are written in **content-digest
    /// order** — `HashMap` iteration order is process-local, and a
    /// checkpoint taken twice from identical state must be byte-identical.
    fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.events_in);
        w.u64(self.dropped);
        w.len(self.partitions.len());
        let mut keys: Vec<&HashableValue> = self.partitions.keys().collect();
        keys.sort_by_key(|k| k.digest());
        for key in keys {
            w.hashable(key);
            self.partitions[key].write_snapshot(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_intake, CompiledQuery};
    use zstream_events::{stock, Schema};
    use zstream_lang::{analyze, Query, SchemaMap};

    fn compiled(src: &str) -> CompiledQuery {
        CompiledQuery::optimize(
            &Query::parse(src).unwrap(),
            &SchemaMap::uniform(Schema::stocks()),
            None,
        )
        .unwrap()
    }

    #[test]
    fn partitionable_when_equalities_connect_all_classes() {
        let aq = analyze(
            &Query::parse("PATTERN A; B; C WHERE A.name = B.name = C.name WITHIN 10").unwrap(),
            &SchemaMap::uniform(Schema::stocks()),
        )
        .unwrap();
        assert!(can_partition_by(&aq, "name"));
        assert!(!can_partition_by(&aq, "price"), "no equalities on price");
        assert!(!can_partition_by(&aq, "missing"), "unknown field");
    }

    #[test]
    fn not_partitionable_with_disconnected_classes() {
        let aq = analyze(
            &Query::parse("PATTERN A; B; C WHERE A.name = B.name WITHIN 10").unwrap(),
            &SchemaMap::uniform(Schema::stocks()),
        )
        .unwrap();
        assert!(!can_partition_by(&aq, "name"), "C is not connected");
    }

    #[test]
    fn construction_rejects_unsound_partitioning() {
        let c = compiled("PATTERN A; B WITHIN 10");
        let intake = build_intake(&c.aq, None).unwrap();
        assert!(matches!(
            PartitionedEngine::new(c, PlanConfig::default(), intake, 4, "name"),
            Err(CoreError::UnsupportedPattern(_))
        ));
    }

    #[test]
    fn partitioned_matches_only_within_keys() {
        let c = compiled("PATTERN A; B WHERE A.name = B.name WITHIN 100");
        let intake = build_intake(&c.aq, None).unwrap();
        let mut pe = PartitionedEngine::new(c, PlanConfig::default(), intake, 1, "name").unwrap();
        let mut matches = Vec::new();
        matches.extend(pe.push(stock(1, 1, "IBM", 1.0, 1)));
        matches.extend(pe.push(stock(2, 2, "Sun", 1.0, 1)));
        matches.extend(pe.push(stock(3, 3, "Sun", 2.0, 1))); // Sun;Sun ✓
        matches.extend(pe.push(stock(4, 4, "IBM", 2.0, 1))); // IBM;IBM ✓
        matches.extend(pe.flush());
        assert_eq!(matches.len(), 2);
        assert_eq!(pe.num_partitions(), 2);
        assert_eq!(pe.metrics().matches_out, 2);
    }

    #[test]
    fn partitioned_equals_unpartitioned() {
        let src = "PATTERN A; B; C WHERE A.name = B.name = C.name WITHIN 50";
        // Small alphabet so partitions receive several events each.
        let names = ["IBM", "Sun", "Oracle"];
        let events: Vec<EventRef> = (0..120u64)
            .map(|i| stock(i + 1, i as i64, names[(i as usize * 7) % 3], i as f64, 1))
            .collect();

        let c = compiled(src);
        let intake = build_intake(&c.aq, None).unwrap();
        let mut pe =
            PartitionedEngine::new(c.clone(), PlanConfig::default(), intake.clone(), 4, "name")
                .unwrap();
        let mut part_out = Vec::new();
        for e in &events {
            part_out.extend(pe.push(e.clone()));
        }
        part_out.extend(pe.flush());
        let mut part_sigs: Vec<_> = part_out.iter().map(|r| pe.record_signature(r)).collect();
        part_sigs.sort();

        let plan = c.physical_plan(PlanConfig::default()).unwrap();
        let mut engine = Engine::new(c.aq.clone(), plan, intake, 4);
        let mut flat_out = Vec::new();
        for e in &events {
            flat_out.extend(engine.push(e.clone()));
        }
        flat_out.extend(engine.flush());
        let mut flat_sigs: Vec<_> = flat_out.iter().map(|r| engine.record_signature(r)).collect();
        flat_sigs.sort();

        assert!(!flat_sigs.is_empty());
        assert_eq!(part_sigs, flat_sigs);
    }

    #[test]
    fn push_batch_equals_per_event_push_and_orders_output() {
        let src = "PATTERN A; B WHERE A.name = B.name WITHIN 100";
        let names = ["IBM", "Sun", "Oracle", "HP"];
        let events: Vec<EventRef> = (0..80u64)
            .map(|i| stock(i + 1, i as i64, names[(i as usize * 5) % 4], i as f64, 1))
            .collect();

        let c = compiled(src);
        let intake = build_intake(&c.aq, None).unwrap();
        let mut batched =
            PartitionedEngine::new(c.clone(), PlanConfig::default(), intake.clone(), 4, "name")
                .unwrap();
        let mut batched_out = Vec::new();
        for chunk in events.chunks(7) {
            let out = batched.push_batch(chunk);
            assert!(
                out.windows(2).all(|w| w[0].end_ts() <= w[1].end_ts()),
                "push_batch output must be end-ts ordered"
            );
            batched_out.extend(out);
        }
        batched_out.extend(batched.flush());

        let mut single =
            PartitionedEngine::new(c, PlanConfig::default(), intake, 4, "name").unwrap();
        let mut single_out = Vec::new();
        for e in &events {
            single_out.extend(single.push(e.clone()));
        }
        single_out.extend(single.flush());

        let mut b_sigs: Vec<_> = batched_out.iter().map(|r| batched.record_signature(r)).collect();
        let mut s_sigs: Vec<_> = single_out.iter().map(|r| single.record_signature(r)).collect();
        b_sigs.sort();
        s_sigs.sort();
        assert!(!b_sigs.is_empty());
        assert_eq!(b_sigs, s_sigs);
        assert_eq!(batched.metrics().events_in, events.len() as u64);
        assert_eq!(batched.metrics().matches_out, single.metrics().matches_out);
    }

    #[test]
    fn push_rows_equals_push_columns_on_the_selected_subset() {
        let src = "PATTERN A; B WHERE A.name = B.name WITHIN 100";
        let names = ["IBM", "Sun", "Oracle", "HP"];
        let events: Vec<EventRef> = (0..60u64)
            .map(|i| stock(i + 1, i as i64, names[(i as usize * 5) % 4], i as f64, 1))
            .collect();
        let batch = EventBatch::from_events(&events).unwrap();
        // Every third row: the kind of selection a shard receives.
        let rows: Vec<u32> = (0..batch.len() as u32).filter(|r| r % 3 == 0).collect();

        let c = compiled(src);
        let intake = build_intake(&c.aq, None).unwrap();
        let mut by_rows =
            PartitionedEngine::new(c.clone(), PlanConfig::default(), intake.clone(), 4, "name")
                .unwrap();
        let mut a = by_rows.push_rows(&batch, &rows);
        a.extend(by_rows.flush());

        let sub = batch.select(&rows);
        let mut by_columns =
            PartitionedEngine::new(c, PlanConfig::default(), intake, 4, "name").unwrap();
        let mut b = by_columns.push_columns(&sub);
        b.extend(by_columns.flush());

        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.start_ts(), y.start_ts());
            assert_eq!(x.end_ts(), y.end_ts());
        }
        assert_eq!(by_rows.metrics().events_in, rows.len() as u64);
    }

    #[test]
    fn push_rows_without_field_drops_and_matches_nothing() {
        let src = "PATTERN A; B WHERE A.name = B.name WITHIN 100";
        let c = compiled(src);
        let intake = build_intake(&c.aq, None).unwrap();
        let mut pe = PartitionedEngine::new(c, PlanConfig::default(), intake, 4, "name").unwrap();
        // A batch whose schema has no `name` field: every selected row is
        // dropped, no partition materializes.
        let mut wb = EventBatch::builder(zstream_events::Schema::weblog(), 2);
        for ts in [1u64, 2] {
            use zstream_events::Value;
            wb.push_row(ts, &[Value::str("1.2.3.4"), Value::str("/a"), Value::str("Course")])
                .unwrap();
        }
        let weblog = wb.finish();
        assert!(pe.push_rows(&weblog, &[0, 1]).is_empty());
        assert_eq!(pe.num_partitions(), 0);
        assert_eq!(pe.metrics().events_in, 2, "dropped rows still count as offered");
    }

    #[test]
    fn partitioned_snapshot_round_trips_with_stable_bytes() {
        let src = "PATTERN A; B WHERE A.name = B.name WITHIN 100";
        let names = ["IBM", "Sun", "Oracle", "HP"];
        let events: Vec<EventRef> = (0..40u64)
            .map(|i| stock(i + 1, i as i64, names[(i as usize * 5) % 4], i as f64, 1))
            .collect();
        let c = compiled(src);
        let intake = build_intake(&c.aq, None).unwrap();
        let mut pe =
            PartitionedEngine::new(c.clone(), PlanConfig::default(), intake.clone(), 4, "name")
                .unwrap();
        let mut head_out = Vec::new();
        for e in &events {
            head_out.extend(pe.push(e.clone()));
        }
        assert!(pe.num_partitions() > 1);

        let snap = |pe: &PartitionedEngine| {
            let mut w = SnapshotWriter::new();
            pe.write_snapshot(&mut w);
            w.into_bytes()
        };
        let bytes = snap(&pe);
        // Digest-sorted partition order: re-snapshotting identical state is
        // byte-identical despite HashMap iteration order.
        assert_eq!(bytes, snap(&pe));

        let mut r = SnapshotReader::new(&bytes);
        let mut restored = PartitionedEngine::restore_snapshot(
            c,
            PlanConfig::default(),
            intake,
            4,
            "name",
            &mut r,
        )
        .unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored.num_partitions(), pe.num_partitions());
        assert_eq!(restored.metrics().events_in, pe.metrics().events_in);
        assert_eq!(restored.metrics().matches_out, pe.metrics().matches_out);

        // Tail equivalence: both engines see the same continuation and must
        // produce the same spans in the same order.
        let tail: Vec<EventRef> = (40..60u64)
            .map(|i| stock(i + 1, i as i64, names[(i as usize * 5) % 4], i as f64, 1))
            .collect();
        let spans =
            |recs: &[Record]| recs.iter().map(|r| (r.start_ts(), r.end_ts())).collect::<Vec<_>>();
        let mut a = pe.push_batch(&tail);
        a.extend(pe.flush());
        let mut b = restored.push_batch(&tail);
        b.extend(restored.flush());
        assert!(!a.is_empty());
        assert_eq!(spans(&a), spans(&b));
    }

    #[test]
    fn negation_chain_does_not_transfer_connectivity() {
        // `T1.name = T2.name = T3.name` with T2 negated: when no T2 occurs,
        // nothing forces T1.name == T3.name, so partitioning is unsound.
        let aq = analyze(
            &Query::parse("PATTERN T1; !T2; T3 WHERE T1.name = T2.name = T3.name WITHIN 10")
                .unwrap(),
            &SchemaMap::uniform(Schema::stocks()),
        )
        .unwrap();
        assert!(!can_partition_by(&aq, "name"));
    }

    #[test]
    fn negated_class_anchored_directly_is_partitionable() {
        // Query 2 written with a direct T1-T3 equality plus a direct anchor
        // for the negated class: sound to partition.
        let aq = analyze(
            &Query::parse(
                "PATTERN T1; !T2; T3 \
                 WHERE T1.name = T3.name AND T2.name = T1.name WITHIN 10",
            )
            .unwrap(),
            &SchemaMap::uniform(Schema::stocks()),
        )
        .unwrap();
        assert!(can_partition_by(&aq, "name"));
    }

    #[test]
    fn unanchored_negated_class_blocks_partitioning() {
        // T1 and T3 are connected, but a T2 from any partition could negate.
        let aq = analyze(
            &Query::parse("PATTERN T1; !T2; T3 WHERE T1.name = T3.name WITHIN 10").unwrap(),
            &SchemaMap::uniform(Schema::stocks()),
        )
        .unwrap();
        assert!(!can_partition_by(&aq, "name"));
    }
}
