//! Engine metrics: throughput inputs and logical peak-memory accounting.
//!
//! The paper reports system performance as `rate = |Input| / t_elapsed` and
//! peak memory consumption per plan (Tables 3 and 5). Wall-clock time is
//! measured by the benchmark harness; the engine tracks everything else:
//! events ingested, matches emitted, assembly/idle rounds, and the peak
//! logical footprint of all buffers and hash indexes sampled at the end of
//! every round.

use zstream_events::{Snapshot, SnapshotError, SnapshotReader, SnapshotResult, SnapshotWriter};

/// Counters maintained by an [`crate::Engine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Primitive events pushed into the engine.
    pub events_in: u64,
    /// Events accepted into at least one leaf buffer (post intake filters).
    pub events_admitted: u64,
    /// Composite matches emitted at the root.
    pub matches_out: u64,
    /// Assembly rounds executed (§4.3).
    pub assembly_rounds: u64,
    /// Idle rounds (batches arriving with no trigger-class instance).
    pub idle_rounds: u64,
    /// Peak logical memory (bytes) across all buffers and hash indexes.
    pub peak_bytes: usize,
    /// Re-optimizations performed by the adaptive controller (§5.3).
    pub replans: u64,
    /// Plan switches actually installed.
    pub plan_switches: u64,
    /// Distinct strings interned in the **process-wide** symbol table (see
    /// [`zstream_events::symbol_stats`]). A *report-level* field: live
    /// engines keep it at zero — the value is stamped exactly once, at
    /// scrape time, by whoever assembles the final report (the runtime's
    /// shutdown path, or [`EngineMetrics::stamp_symbol_stats`]). The
    /// live-queryable form is the `zstream_symbols_interned` gauge in the
    /// observability registry.
    pub symbols_interned: u64,
    /// Bytes the symbol table's intern hits avoided re-allocating (what a
    /// per-value `Arc<str>` representation would have copied). Report-level,
    /// like `symbols_interned`; live form: `zstream_symbol_bytes_saved`.
    pub symbol_bytes_saved: u64,
    /// Events rejected by an upstream reorder stage as arriving beyond its
    /// slack window (§4.1 disordered streams). Zero unless a reorder stage
    /// fronts this engine (the scale-out runtime stamps it).
    pub late_events: u64,
    /// Peak number of events the upstream reorder stage held back at once —
    /// the memory cost of the slack. Report-level: stamped once at scrape
    /// from the reorder stage; live form: the `zstream_reorder_buffered_peak`
    /// gauge.
    pub reorder_buffered_peak: u64,
}

impl EngineMetrics {
    /// Records a round's footprint sample.
    pub fn sample_memory(&mut self, bytes: usize) {
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
    }

    /// Peak memory in mebibytes (the unit of Tables 3 and 5).
    pub fn peak_mb(&self) -> f64 {
        self.peak_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Folds another engine's counters into this one. Used by
    /// [`crate::PartitionedEngine`] and the scale-out runtime to report one
    /// aggregated snapshot across per-partition / per-shard engines.
    ///
    /// Per-field semantics:
    /// * `events_in`, `events_admitted`, `matches_out`, `assembly_rounds`,
    ///   `idle_rounds`, `replans`, `plan_switches`, `late_events` — true
    ///   per-engine counters: **sum**.
    /// * `peak_bytes` — **sum**: the constituent engines hold their buffers
    ///   simultaneously, so the sum of per-engine peaks is an upper bound
    ///   on the true simultaneous peak.
    /// * `symbols_interned`, `symbol_bytes_saved`, `reorder_buffered_peak`
    ///   — report-level fields describing one process-global source, zero
    ///   on live engines (stamped once at scrape, never per engine):
    ///   **max**, so a stamped report merged with unstamped engines keeps
    ///   its value and two stamped reports never double-count.
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.events_in += other.events_in;
        self.events_admitted += other.events_admitted;
        self.matches_out += other.matches_out;
        self.assembly_rounds += other.assembly_rounds;
        self.idle_rounds += other.idle_rounds;
        self.peak_bytes += other.peak_bytes;
        self.replans += other.replans;
        self.plan_switches += other.plan_switches;
        self.symbols_interned = self.symbols_interned.max(other.symbols_interned);
        self.symbol_bytes_saved = self.symbol_bytes_saved.max(other.symbol_bytes_saved);
        self.late_events += other.late_events;
        self.reorder_buffered_peak = self.reorder_buffered_peak.max(other.reorder_buffered_peak);
    }

    /// Stamps the process-wide symbol-table statistics onto this snapshot.
    /// Call exactly once, on the final aggregated report — never on
    /// per-engine metrics (merging stamped engines would smuggle a global
    /// value through per-engine counters; see [`EngineMetrics::merge`]).
    pub fn stamp_symbol_stats(&mut self) {
        let s = zstream_events::symbol_stats();
        self.symbols_interned = s.symbols;
        self.symbol_bytes_saved = s.bytes_saved;
    }

    /// Rebuilds metrics from a [`Snapshot`] stream, so throughput and
    /// peak-memory accounting span a checkpoint/restore boundary.
    pub fn restore_snapshot(r: &mut SnapshotReader<'_>) -> SnapshotResult<EngineMetrics> {
        Ok(EngineMetrics {
            events_in: r.u64()?,
            events_admitted: r.u64()?,
            matches_out: r.u64()?,
            assembly_rounds: r.u64()?,
            idle_rounds: r.u64()?,
            peak_bytes: usize::try_from(r.u64()?)
                .map_err(|_| SnapshotError::Corrupt("peak bytes exceeds usize".into()))?,
            replans: r.u64()?,
            plan_switches: r.u64()?,
            symbols_interned: r.u64()?,
            symbol_bytes_saved: r.u64()?,
            late_events: r.u64()?,
            reorder_buffered_peak: r.u64()?,
        })
    }
}

impl Snapshot for EngineMetrics {
    fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.events_in);
        w.u64(self.events_admitted);
        w.u64(self.matches_out);
        w.u64(self.assembly_rounds);
        w.u64(self.idle_rounds);
        w.u64(self.peak_bytes as u64);
        w.u64(self.replans);
        w.u64(self.plan_switches);
        w.u64(self.symbols_interned);
        w.u64(self.symbol_bytes_saved);
        w.u64(self.late_events);
        w.u64(self.reorder_buffered_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_monotone() {
        let mut m = EngineMetrics::default();
        m.sample_memory(100);
        m.sample_memory(50);
        assert_eq!(m.peak_bytes, 100);
        m.sample_memory(200);
        assert_eq!(m.peak_bytes, 200);
    }

    #[test]
    fn merge_sums_counters_and_peaks() {
        let mut a = EngineMetrics {
            events_in: 10,
            events_admitted: 8,
            matches_out: 3,
            assembly_rounds: 2,
            idle_rounds: 1,
            peak_bytes: 100,
            replans: 1,
            plan_switches: 1,
            symbols_interned: 10,
            symbol_bytes_saved: 100,
            late_events: 3,
            reorder_buffered_peak: 40,
        };
        let b = EngineMetrics {
            events_in: 5,
            events_admitted: 4,
            matches_out: 2,
            assembly_rounds: 1,
            idle_rounds: 3,
            peak_bytes: 50,
            replans: 0,
            plan_switches: 0,
            symbols_interned: 25,
            symbol_bytes_saved: 60,
            late_events: 2,
            reorder_buffered_peak: 15,
        };
        a.merge(&b);
        assert_eq!(a.events_in, 15);
        assert_eq!(a.events_admitted, 12);
        assert_eq!(a.matches_out, 5);
        assert_eq!(a.assembly_rounds, 3);
        assert_eq!(a.idle_rounds, 4);
        assert_eq!(a.peak_bytes, 150);
        assert_eq!(a.replans, 1);
        assert_eq!(a.plan_switches, 1);
        // Symbol stats describe one global table: max, not sum.
        assert_eq!(a.symbols_interned, 25);
        assert_eq!(a.symbol_bytes_saved, 100);
        // Late events sum; the reorder peak describes one global stage: max.
        assert_eq!(a.late_events, 5);
        assert_eq!(a.reorder_buffered_peak, 40);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut a = EngineMetrics { events_in: 7, matches_out: 2, ..Default::default() };
        let before = a;
        a.merge(&EngineMetrics::default());
        assert_eq!(a, before);
    }

    #[test]
    fn peak_mb_converts() {
        let mut m = EngineMetrics::default();
        m.sample_memory(2 * 1024 * 1024);
        assert!((m.peak_mb() - 2.0).abs() < 1e-12);
    }
}
