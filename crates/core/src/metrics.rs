//! Engine metrics: throughput inputs and logical peak-memory accounting.
//!
//! The paper reports system performance as `rate = |Input| / t_elapsed` and
//! peak memory consumption per plan (Tables 3 and 5). Wall-clock time is
//! measured by the benchmark harness; the engine tracks everything else:
//! events ingested, matches emitted, assembly/idle rounds, and the peak
//! logical footprint of all buffers and hash indexes sampled at the end of
//! every round.

/// Counters maintained by an [`crate::Engine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Primitive events pushed into the engine.
    pub events_in: u64,
    /// Events accepted into at least one leaf buffer (post intake filters).
    pub events_admitted: u64,
    /// Composite matches emitted at the root.
    pub matches_out: u64,
    /// Assembly rounds executed (§4.3).
    pub assembly_rounds: u64,
    /// Idle rounds (batches arriving with no trigger-class instance).
    pub idle_rounds: u64,
    /// Peak logical memory (bytes) across all buffers and hash indexes.
    pub peak_bytes: usize,
    /// Re-optimizations performed by the adaptive controller (§5.3).
    pub replans: u64,
    /// Plan switches actually installed.
    pub plan_switches: u64,
}

impl EngineMetrics {
    /// Records a round's footprint sample.
    pub fn sample_memory(&mut self, bytes: usize) {
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
    }

    /// Peak memory in mebibytes (the unit of Tables 3 and 5).
    pub fn peak_mb(&self) -> f64 {
        self.peak_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_monotone() {
        let mut m = EngineMetrics::default();
        m.sample_memory(100);
        m.sample_memory(50);
        assert_eq!(m.peak_bytes, 100);
        m.sample_memory(200);
        assert_eq!(m.peak_bytes, 200);
    }

    #[test]
    fn peak_mb_converts() {
        let mut m = EngineMetrics::default();
        m.sample_memory(2 * 1024 * 1024);
        assert!((m.peak_mb() - 2.0).abs() < 1e-12);
    }
}
