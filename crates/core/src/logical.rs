//! Rule-based pattern transformations (§5.2.1).
//!
//! As in relational systems, a pattern has many algebraically equivalent
//! expressions with very different evaluation costs. The paper's acceptance
//! criterion: take a rewrite only when the target expression
//!
//! 1. has **fewer operators**, or
//! 2. has the same number of operators but **cheaper** ones, with the
//!    operator cost order `C_DIS < C_SEQ < C_CON` (NSEQ and KSEQ are not
//!    substitutable).
//!
//! The rules implemented here (the paper omits its full list for space; this
//! set covers its worked example and the standard algebraic identities):
//!
//! * **De Morgan for negation groups**: `(!B & !C)` → `!(B | C)` — the
//!   paper's Expression1 → Expression2 example: one fewer operator and
//!   disjunction is cheaper than conjunction,
//! * **flattening** of nested n-ary connectives: `(A;B);C` → `A;B;C`,
//! * **idempotence**: `A | A` → `A`, `A & A` → `A`,
//! * **singleton collapse**: unary `Seq`/`Conj`/`Disj` nodes disappear.
//!
//! Rewrites run on the *untyped* AST so that inputs like Expression1 (which
//! the strict analyzer would reject — mixed positive/negative conjunctions
//! are only meaningful when rewritable) normalize before analysis.

use zstream_lang::{PatternExpr, Query};

/// Applies all rewrite rules to a fixpoint and returns the simplified
/// pattern together with the number of rewrites applied.
pub fn rewrite_pattern(p: &PatternExpr) -> (PatternExpr, usize) {
    let mut cur = p.clone();
    let mut total = 0;
    loop {
        let (next, n) = rewrite_once(&cur);
        total += n;
        if n == 0 {
            return (cur, total);
        }
        cur = next;
    }
}

/// Rewrites a whole query in place (only the pattern is affected).
pub fn rewrite_query(q: &Query) -> (Query, usize) {
    let (pattern, n) = rewrite_pattern(&q.pattern);
    (Query { pattern, ..q.clone() }, n)
}

fn rewrite_once(p: &PatternExpr) -> (PatternExpr, usize) {
    let before = p.operator_count();
    let mut changed = 0;
    let next = walk(p, &mut changed);
    // The acceptance criterion of §5.2.1 is monotone by construction: every
    // individual rule either removes operators or swaps CON for DIS. Assert
    // it anyway — a rewrite must never grow the expression.
    debug_assert!(next.operator_count() <= before, "rewrite grew the pattern: {p} -> {next}");
    (next, changed)
}

fn walk(p: &PatternExpr, changed: &mut usize) -> PatternExpr {
    match p {
        PatternExpr::Class(_) => p.clone(),
        PatternExpr::Neg(inner) => PatternExpr::Neg(Box::new(walk(inner, changed))),
        PatternExpr::Kleene(inner, k) => PatternExpr::Kleene(Box::new(walk(inner, changed)), *k),
        PatternExpr::Seq(xs) => rebuild_nary(xs, changed, NaryKind::Seq),
        PatternExpr::Conj(xs) => {
            let rebuilt = rebuild_nary(xs, changed, NaryKind::Conj);
            // De Morgan: a conjunction of only negated operands becomes a
            // negated disjunction (fewer operators, cheaper operator).
            if let PatternExpr::Conj(ys) = &rebuilt {
                if ys.len() >= 2 && ys.iter().all(|y| matches!(y, PatternExpr::Neg(_))) {
                    let inner: Vec<PatternExpr> = ys
                        .iter()
                        .map(|y| match y {
                            PatternExpr::Neg(i) => (**i).clone(),
                            _ => unreachable!(),
                        })
                        .collect();
                    *changed += 1;
                    return PatternExpr::Neg(Box::new(PatternExpr::Disj(inner)));
                }
            }
            rebuilt
        }
        PatternExpr::Disj(xs) => rebuild_nary(xs, changed, NaryKind::Disj),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum NaryKind {
    Seq,
    Conj,
    Disj,
}

fn rebuild_nary(xs: &[PatternExpr], changed: &mut usize, kind: NaryKind) -> PatternExpr {
    let mut out: Vec<PatternExpr> = Vec::with_capacity(xs.len());
    for x in xs {
        let y = walk(x, changed);
        // Flatten same-kind nesting.
        match (kind, y) {
            (NaryKind::Seq, PatternExpr::Seq(inner)) => {
                *changed += 1;
                out.extend(inner);
            }
            (NaryKind::Conj, PatternExpr::Conj(inner)) => {
                *changed += 1;
                out.extend(inner);
            }
            (NaryKind::Disj, PatternExpr::Disj(inner)) => {
                *changed += 1;
                out.extend(inner);
            }
            (_, y) => out.push(y),
        }
    }
    // Idempotence for Conj/Disj: drop exact duplicates (classes only —
    // sequences may legitimately repeat structure via distinct classes, and
    // analysis enforces unique class names anyway).
    if matches!(kind, NaryKind::Conj | NaryKind::Disj) {
        let mut deduped: Vec<PatternExpr> = Vec::with_capacity(out.len());
        for y in out {
            if deduped.contains(&y) {
                *changed += 1;
            } else {
                deduped.push(y);
            }
        }
        out = deduped;
    }
    if out.len() == 1 {
        return out.into_iter().next().expect("len checked");
    }
    match kind {
        NaryKind::Seq => PatternExpr::Seq(out),
        NaryKind::Conj => PatternExpr::Conj(out),
        NaryKind::Disj => PatternExpr::Disj(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(src: &str) -> PatternExpr {
        Query::parse(&format!("PATTERN {src} WITHIN 10")).unwrap().pattern
    }

    #[test]
    fn paper_expression1_becomes_expression2() {
        // "A; (!B & !C); D"  ->  "A; !(B | C); D"
        let e1 = pat("A; (!B & !C); D");
        let (e2, n) = rewrite_pattern(&e1);
        assert!(n >= 1);
        assert_eq!(e2, pat("A; !(B | C); D"));
        assert!(e2.operator_count() < e1.operator_count());
    }

    #[test]
    fn three_way_negated_conjunction() {
        let e = pat("A; (!B & !C & !D); E");
        let (r, _) = rewrite_pattern(&e);
        assert_eq!(r, pat("A; !(B | C | D); E"));
    }

    #[test]
    fn flattens_nested_sequences() {
        // The parser flattens textual nesting itself, so build the nested
        // tree directly.
        let e = PatternExpr::Seq(vec![pat("A; B"), pat("C; D")]);
        let (r, n) = rewrite_pattern(&e);
        assert_eq!(r, pat("A; B; C; D"));
        assert!(n >= 1);
    }

    #[test]
    fn dedupes_disjunction() {
        let e = PatternExpr::Disj(vec![
            PatternExpr::Class("A".into()),
            PatternExpr::Class("A".into()),
            PatternExpr::Class("B".into()),
        ]);
        let (r, n) = rewrite_pattern(&e);
        assert_eq!(r, pat("A | B"));
        assert_eq!(n, 1);
    }

    #[test]
    fn collapses_singletons() {
        let e =
            PatternExpr::Disj(vec![PatternExpr::Class("A".into()), PatternExpr::Class("A".into())]);
        let (r, _) = rewrite_pattern(&e);
        assert_eq!(r, PatternExpr::Class("A".into()));
    }

    #[test]
    fn fixpoint_reached_and_stable() {
        let e = pat("A; (!B & !C); D");
        let (r1, _) = rewrite_pattern(&e);
        let (r2, n2) = rewrite_pattern(&r1);
        assert_eq!(r1, r2);
        assert_eq!(n2, 0);
    }

    #[test]
    fn positive_patterns_untouched() {
        for src in ["A; B; C", "A & B", "A | (B & C)", "A; B*; C"] {
            let e = pat(src);
            let (r, n) = rewrite_pattern(&e);
            assert_eq!(r, e, "{src} should be stable");
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn rewrite_query_keeps_other_clauses() {
        let q =
            Query::parse("PATTERN A; (!B & !C); D WHERE A.price > D.price WITHIN 10 RETURN A, D")
                .unwrap();
        let (r, n) = rewrite_query(&q);
        assert!(n >= 1);
        assert_eq!(r.within, q.within);
        assert_eq!(r.where_clause, q.where_clause);
        assert_eq!(r.returns, q.returns);
    }
}
