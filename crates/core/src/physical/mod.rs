//! Physical plans: buffers, bindings, hash indexes, nodes and operator
//! evaluation (§4 of the paper).

pub mod binding;
pub mod buffer;
pub mod eval;
pub mod hash;
pub mod plan;

pub use binding::{ClassMap, PairBinding, RecordBinding, WithEventBinding};
pub use buffer::Buffer;
pub use eval::EvalCtx;
pub use hash::{HashIndex, HashSpec, KeyPart};
pub use plan::{NegGuard, Node, NodeKind, PhysicalPlan, PlanConfig};
