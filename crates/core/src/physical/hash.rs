//! Hash evaluation of equality predicates (§5.2.2).
//!
//! When a node's predicates include equalities `A.f = B.f` between its two
//! sides, ZStream builds a hash table keyed on the left side's attribute(s)
//! and probes it with each right record instead of scanning the whole left
//! buffer. Multiple equality predicates at one node form a composite key —
//! the paper's "primary and secondary hash tables" collapse into one
//! composite-keyed table with identical semantics.

use std::collections::HashMap;

use zstream_events::{HashableValue, Record};
use zstream_lang::ClassId;

use crate::physical::binding::ClassMap;
use crate::physical::buffer::Buffer;

/// One key component: read `field` of the event bound to `class`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPart {
    /// Class whose event supplies the key.
    pub class: ClassId,
    /// Field index within that class's schema.
    pub field: usize,
}

/// Specification of a hash join at one node.
#[derive(Debug, Clone)]
pub struct HashSpec {
    /// Key extractors on the left (build) side.
    pub left: Vec<KeyPart>,
    /// Key extractors on the right (probe) side, aligned with `left`.
    pub right: Vec<KeyPart>,
    /// Indexes (into the node's predicate list) covered by this hash join;
    /// they are skipped during per-pair predicate evaluation.
    pub covered_preds: Vec<usize>,
}

/// A hash index over a build-side buffer: composite key → record indexes in
/// buffer order. Maintained incrementally; rebuilt when the buffer prunes.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<Vec<HashableValue>, Vec<u32>>,
    /// Records whose key could not be extracted (an equality attribute's
    /// class left unbound by a disjunction): they match every probe
    /// vacuously and are appended to every candidate list.
    unkeyed: Vec<u32>,
    indexed: usize,
    entries: usize,
}

impl HashIndex {
    /// An empty index.
    pub fn new() -> HashIndex {
        HashIndex::default()
    }

    /// Extracts the composite key of `rec` using `parts`; `None` when any
    /// part's class is unbound (such records can never satisfy the equality).
    pub fn key_of(rec: &Record, map: &ClassMap, parts: &[KeyPart]) -> Option<Vec<HashableValue>> {
        parts
            .iter()
            .map(|p| {
                let slot = map.slot_of(p.class)?;
                rec.slot(slot).as_one().map(|e| e.value(p.field).hash_key())
            })
            .collect()
    }

    /// Brings the index up to date with `buffer` (indexes new records).
    pub fn sync(&mut self, buffer: &Buffer, map: &ClassMap, parts: &[KeyPart]) {
        while self.indexed < buffer.len() {
            let idx = self.indexed;
            match Self::key_of(buffer.get(idx), map, parts) {
                Some(key) => {
                    self.map.entry(key).or_default().push(idx as u32);
                    self.entries += 1;
                }
                None => self.unkeyed.push(idx as u32),
            }
            self.indexed += 1;
        }
    }

    /// Rebuilds from scratch (after the underlying buffer pruned records and
    /// indexes shifted).
    pub fn rebuild(&mut self, buffer: &Buffer, map: &ClassMap, parts: &[KeyPart]) {
        self.map.clear();
        self.unkeyed.clear();
        self.indexed = 0;
        self.entries = 0;
        self.sync(buffer, map, parts);
    }

    /// Build-side record indexes matching `key`, in buffer order.
    pub fn probe(&self, key: &[HashableValue]) -> &[u32] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Records with no extractable key (they match any probe vacuously).
    pub fn unkeyed(&self) -> &[u32] {
        &self.unkeyed
    }

    /// Number of indexed entries (for memory accounting).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Approximate footprint in bytes for the logical memory accounting.
    pub fn bytes(&self) -> usize {
        self.entries * (std::mem::size_of::<HashableValue>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstream_events::stock;

    fn buf_with(names: &[(&str, u64)]) -> (Buffer, ClassMap) {
        let mut b = Buffer::new();
        for (name, ts) in names {
            b.push(Record::primitive(stock(*ts, *ts as i64, name, 1.0, 1)));
        }
        (b, ClassMap::new(1, &[0]))
    }

    fn name_key() -> Vec<KeyPart> {
        vec![KeyPart { class: 0, field: 1 }]
    }

    #[test]
    fn probe_returns_matching_indexes_in_order() {
        let (b, map) = buf_with(&[("IBM", 1), ("Sun", 2), ("IBM", 3)]);
        let mut idx = HashIndex::new();
        idx.sync(&b, &map, &name_key());
        let key = HashIndex::key_of(b.get(0), &map, &name_key()).unwrap();
        assert_eq!(idx.probe(&key), &[0, 2]);
        assert_eq!(idx.entries(), 3);
    }

    #[test]
    fn sync_is_incremental() {
        let (mut b, map) = buf_with(&[("IBM", 1)]);
        let mut idx = HashIndex::new();
        idx.sync(&b, &map, &name_key());
        b.push(Record::primitive(stock(5, 5, "IBM", 1.0, 1)));
        idx.sync(&b, &map, &name_key());
        let key = HashIndex::key_of(b.get(0), &map, &name_key()).unwrap();
        assert_eq!(idx.probe(&key), &[0, 1]);
    }

    #[test]
    fn rebuild_after_prune_fixes_indexes() {
        let (mut b, map) = buf_with(&[("IBM", 1), ("IBM", 2), ("IBM", 3)]);
        let mut idx = HashIndex::new();
        idx.sync(&b, &map, &name_key());
        b.prune(3);
        idx.rebuild(&b, &map, &name_key());
        let key = HashIndex::key_of(b.get(0), &map, &name_key()).unwrap();
        assert_eq!(idx.probe(&key), &[0]);
        assert_eq!(b.get(0).end_ts(), 3);
    }

    #[test]
    fn mixed_type_equality_join_keys_coerce() {
        // Regression (§5.2.2 hashable form): an equality join between an
        // `int` column and a `float` column must treat `Int(v)` and
        // `Float(v as f64)` as the same key — and must NOT collapse large
        // integers that only collide after a lossy f64 cast.
        use std::sync::Arc;
        use zstream_events::{Event, Schema, Value, ValueType};
        let int_schema =
            Arc::new(Schema::builder("IntSide").field("k", ValueType::Int).build().unwrap());
        let float_schema =
            Arc::new(Schema::builder("FloatSide").field("k", ValueType::Float).build().unwrap());
        let big = 1i64 << 53;
        let mut build = Buffer::new();
        for (ts, v) in [(1, 2), (2, big), (3, big + 1)] {
            let e = Event::new(Arc::clone(&int_schema), ts, vec![Value::Int(v)]).unwrap();
            build.push(Record::primitive(e));
        }
        let map = ClassMap::new(2, &[0]);
        let parts = vec![KeyPart { class: 0, field: 0 }];
        let mut idx = HashIndex::new();
        idx.sync(&build, &map, &parts);

        let probe_key = |v: f64| {
            let e = Event::new(Arc::clone(&float_schema), 9, vec![Value::Float(v)]).unwrap();
            let rec = Record::primitive(e);
            let pmap = ClassMap::new(2, &[1]);
            HashIndex::key_of(&rec, &pmap, &[KeyPart { class: 1, field: 0 }]).unwrap()
        };
        // Float(2.0) finds Int(2).
        assert_eq!(idx.probe(&probe_key(2.0)), &[0]);
        // Float(2^53) finds exactly Int(2^53) — not the neighbour that a
        // lossy cast would have merged into the same bucket *and* treated
        // as join-equal.
        assert_eq!(idx.probe(&probe_key(big as f64)), &[1]);
        // Non-integral probe finds nothing.
        assert!(idx.probe(&probe_key(2.5)).is_empty());
    }

    #[test]
    fn composite_keys_distinguish_pairs() {
        // Key on (name, volume).
        let mut b = Buffer::new();
        b.push(Record::primitive(stock(1, 1, "IBM", 1.0, 10)));
        b.push(Record::primitive(stock(2, 2, "IBM", 1.0, 20)));
        let map = ClassMap::new(1, &[0]);
        let parts = vec![KeyPart { class: 0, field: 1 }, KeyPart { class: 0, field: 3 }];
        let mut idx = HashIndex::new();
        idx.sync(&b, &map, &parts);
        let k0 = HashIndex::key_of(b.get(0), &map, &parts).unwrap();
        let k1 = HashIndex::key_of(b.get(1), &map, &parts).unwrap();
        assert_ne!(k0, k1);
        assert_eq!(idx.probe(&k0), &[0]);
    }
}
