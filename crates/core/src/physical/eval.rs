//! Operator evaluation (§4.4).
//!
//! Each assembly round evaluates every internal node bottom-up (the node
//! arena is built children-first, so ascending index order is correct).
//! Every operator consumes its children in end-timestamp order and emits in
//! end-timestamp order, maintaining the buffer invariant of §4.2:
//!
//! * **SEQ** — Algorithm 1: outer loop over the right child's *new* records,
//!   inner loop over the left child's end-before prefix (or a hash probe,
//!   §5.2.2), then the right input is cleared/consumed,
//! * **NSEQ** — Algorithm 2: for each new right record, scan the negation
//!   buffers backward for the latest qualifying negation instance; emit
//!   `(b, Rr)` or `(NULL, Rr)`,
//! * **CONJ** — Algorithm 3: a sort-merge over both children's cursors,
//!   combining each newly consumed record with all earlier records of the
//!   other side,
//! * **DISJ** — an end-ordered merge of both children, padding slots,
//! * **KSEQ** — Algorithm 4: trinary start/closure/end grouping,
//! * **NEG** — the on-top filter: drop composites with a qualifying
//!   negation instance interleaved between `prev` and `next`.

use zstream_events::{EventRef, Record, Slot, Ts};
use zstream_lang::{eval_binop, ClassId, EventBinding, KleeneKind, TypedExpr};

use crate::physical::binding::{
    pred_passes, ClassMap, PairBinding, RecordBinding, WithEventBinding,
};
use crate::physical::hash::HashIndex;
use crate::physical::plan::{Node, NodeKind, PhysicalPlan, ProbeSide};

/// Per-round evaluation context.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx {
    /// The query time window.
    pub window: Ts,
    /// Earliest allowed timestamp this round (§4.3).
    pub eat: Ts,
    /// Classes that may be legitimately unbound (disjunction branches).
    pub optional_mask: u64,
}

impl PhysicalPlan {
    /// Runs one assembly round: prunes every buffer against `eat`, evaluates
    /// all internal nodes bottom-up, and drains the root's output.
    pub fn assemble(&mut self, eat: Ts) -> Vec<Record> {
        let ctx = EvalCtx { window: self.window, eat, optional_mask: self.optional_mask };
        if self.config.eat_pruning {
            self.prune_all(eat);
        }
        for k in 0..self.nodes.len() {
            if !self.nodes[k].is_leaf() {
                eval_node(&mut self.nodes, k, &ctx);
            }
        }
        let root = self.root;
        if self.nodes[root].is_leaf() {
            // Degenerate single-class pattern: emit unconsumed leaf records.
            let buf = &mut self.nodes[root].buf;
            let out: Vec<Record> = buf.iter_unconsumed().cloned().collect();
            buf.consume_all();
            out
        } else {
            self.nodes[root].buf.take_all()
        }
    }

    /// Prunes every buffer and rebuilds hash indexes whose build-side buffer
    /// shifted.
    fn prune_all(&mut self, eat: Ts) {
        let pruned: Vec<bool> = self.nodes.iter_mut().map(|n| n.buf.prune(eat) > 0).collect();
        for k in 0..self.nodes.len() {
            let Some(spec) = self.nodes[k].hash.clone() else { continue };
            let (left, right) = match self.nodes[k].kind {
                NodeKind::Seq { left, right } | NodeKind::Conj { left, right } => (left, right),
                _ => continue,
            };
            let (before, rest) = self.nodes.split_at_mut(k);
            let node = &mut rest[0];
            if pruned[left] {
                node.hash_left.rebuild(&before[left].buf, &before[left].map, &spec.left);
            }
            if pruned[right] && matches!(node.kind, NodeKind::Conj { .. }) {
                node.hash_right.rebuild(&before[right].buf, &before[right].map, &spec.right);
            }
        }
    }

    /// Total logical footprint of all buffers and hash indexes (peak-memory
    /// accounting for Tables 3 and 5).
    pub fn total_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.buf.bytes() + n.hash_left.bytes() + n.hash_right.bytes()).sum()
    }

    /// Resets all dynamic state: internal buffers cleared, leaf buffers
    /// rewound for replay, except classes in `keep_consumed` (the trigger
    /// classes) whose cursor is preserved — the adaptive plan-switch
    /// protocol of §5.3.
    pub fn reset_for_switch(
        &mut self,
        leaf_snapshots: Vec<(ClassId, crate::physical::buffer::Buffer)>,
    ) {
        for (class, buf) in leaf_snapshots {
            let li = self.leaf_of_class[class];
            self.nodes[li].buf = buf;
        }
    }

    /// Extracts the leaf buffers (with their cursors) for transplanting into
    /// a new plan.
    pub fn take_leaf_buffers(&mut self) -> Vec<(ClassId, crate::physical::buffer::Buffer)> {
        let mut out = Vec::new();
        for c in 0..self.num_classes {
            let li = self.leaf_of_class[c];
            out.push((c, std::mem::take(&mut self.nodes[li].buf)));
        }
        out
    }
}

fn eval_node(nodes: &mut [Node], k: usize, ctx: &EvalCtx) {
    match nodes[k].kind {
        NodeKind::Leaf { .. } => {}
        NodeKind::Seq { left, right } => eval_seq(nodes, k, left, right, ctx),
        NodeKind::Conj { left, right } => eval_conj(nodes, k, left, right, ctx),
        NodeKind::Disj { left, right } => eval_disj(nodes, k, left, right),
        NodeKind::Nseq { .. } => eval_nseq(nodes, k, ctx),
        NodeKind::Kseq { .. } => eval_kseq(nodes, k, ctx),
        NodeKind::NegTop { .. } => eval_negtop(nodes, k, ctx),
    }
}

/// Consumes a child after its new records were processed: internal buffers
/// in drain roles are cleared (Algorithm 1 step 7), everything else keeps
/// records behind the cursor.
fn finish_consume(nodes: &mut [Node], child: usize) {
    if nodes[child].drain {
        nodes[child].buf.clear();
    } else {
        nodes[child].buf.consume_all();
    }
}

/// Checks the NSEQ guards of a SEQ node: every bound negation slot in the
/// right record caps the left record from below (`left.end >= b.ts`,
/// Figure 5's `A.end-ts >= B.timestamp`).
fn guards_pass(
    guards: &[crate::physical::plan::NegGuard],
    rmap: &ClassMap,
    lr: &Record,
    rr: &Record,
) -> bool {
    guards.iter().all(|g| {
        g.neg_classes.iter().all(|nc| match rmap.slot_of(*nc).map(|p| rr.slot(p)) {
            Some(Slot::One(b)) => lr.end_ts() >= b.ts(),
            _ => true,
        })
    })
}

fn eval_seq(nodes: &mut [Node], k: usize, left: usize, right: usize, ctx: &EvalCtx) {
    // Sync the build-side hash index with the left child's buffer.
    if let Some(spec) = nodes[k].hash.clone() {
        let (before, rest) = nodes.split_at_mut(k);
        rest[0].hash_left.sync(&before[left].buf, &before[left].map, &spec.left);
    }
    let (before, rest) = nodes.split_at_mut(k);
    let node = &mut rest[0];
    let lnode = &before[left];
    let rnode = &before[right];
    let Node { buf: out, preds, split_preds, split_flag, hash, hash_left, guards, .. } = node;
    let mut candidates: Vec<u32> = Vec::new();
    // Split-predicate fast path: sound only when no referenced class can be
    // legitimately unbound (vacuous truth needs the tree-walk semantics).
    let use_split = ctx.optional_mask == 0 && !split_preds.is_empty();
    let has_slow = !use_split || split_flag.iter().any(|f| !f);
    let has_guards = !guards.is_empty();
    // Per-right-record values of the fixed sides; `None` = evaluation error
    // (the predicate fails every pair unless hash coverage skips it).
    let mut fixed_vals: Vec<Option<zstream_events::Value>> = Vec::with_capacity(split_preds.len());

    for ri in rnode.buf.consumed()..rnode.buf.len() {
        let rr = rnode.buf.get(ri);
        if use_split {
            let rb = RecordBinding { rec: rr, map: &rnode.map };
            fixed_vals.clear();
            fixed_vals.extend(split_preds.iter().map(|sp| sp.fixed.eval(&rb).ok()));
        }
        // Candidate left records: hash probe or the end-before prefix.
        candidates.clear();
        let mut hash_used = false;
        if let Some(spec) = &*hash {
            if let Some(key) = HashIndex::key_of(rr, &rnode.map, &spec.right) {
                candidates.extend_from_slice(hash_left.probe(&key));
                candidates.extend_from_slice(hash_left.unkeyed());
                hash_used = true;
            }
        }
        let covered: &[usize] =
            if hash_used { hash.as_ref().map_or(&[], |s| &s.covered_preds) } else { &[] };
        // `$time_check`: hash candidates are unordered in time; the scan
        // path's prefix/window bounds make both time checks vacuous there.
        // A macro (not a closure) so each call site gets a specialized body.
        macro_rules! consider {
            ($li:expr, $time_check:literal) => {{
                let lr = lnode.buf.get($li);
                let rejected = ($time_check
                    && (lr.end_ts() >= rr.start_ts() || rr.end_ts() - lr.start_ts() > ctx.window))
                    || (has_guards && !guards_pass(guards, &rnode.map, lr, rr))
                    || (use_split
                        && !split_preds_pass(
                            split_preds,
                            &fixed_vals,
                            covered,
                            hash_used,
                            lr,
                            &lnode.map,
                        ));
                if !rejected {
                    let slow_pass = !has_slow || {
                        let binding = PairBinding {
                            left: RecordBinding { rec: lr, map: &lnode.map },
                            right: RecordBinding { rec: rr, map: &rnode.map },
                        };
                        preds.iter().enumerate().all(|(i, p)| {
                            (use_split && split_flag[i])
                                || (hash_used && covered.contains(&i))
                                || pred_passes(p, &binding, ctx.optional_mask)
                        })
                    };
                    if slow_pass {
                        out.push(Record::combine(lr, rr));
                    }
                }
            }};
        }
        if hash_used {
            for &li in &candidates {
                consider!(li as usize, true);
            }
        } else {
            // Scan candidates sorted by end: `[lo, hi)` holds exactly the
            // records with `end < rr.start` that can still satisfy the window
            // (`end >= rr.end - window` is necessary since `start <= end`;
            // the per-pair check below covers starts that stretch further).
            let hi = lnode.buf.prefix_end_before(rr.start_ts());
            let lo = lnode.buf.first_end_at_or_after(rr.end_ts().saturating_sub(ctx.window));
            for li in lo..hi {
                let lr = lnode.buf.get(li);
                if rr.end_ts() - lr.start_ts() > ctx.window {
                    continue;
                }
                consider!(li, false);
            }
        }
    }
    finish_consume(nodes, right);
}

/// Evaluates a SEQ node's split predicates against one left candidate, with
/// the fixed sides pre-evaluated in `fixed_vals`. Matches the tree-walk
/// semantics exactly: an unevaluable side fails the predicate (closed), and
/// hash-covered predicates are skipped when the probe came from the index.
#[inline]
fn split_preds_pass(
    split_preds: &[crate::physical::plan::SplitPred],
    fixed_vals: &[Option<zstream_events::Value>],
    covered: &[usize],
    hash_used: bool,
    lr: &Record,
    lmap: &ClassMap,
) -> bool {
    split_preds.iter().zip(fixed_vals).all(|(sp, fv)| {
        if hash_used && covered.contains(&sp.pred) {
            return true;
        }
        let Some(fv) = fv else { return false };
        let pv = match &sp.probe {
            ProbeSide::Slot { slot, field } => match lr.slot(*slot).as_one() {
                Some(ev) => ev.value(*field),
                None => return false,
            },
            ProbeSide::Expr(e) => match e.eval(&RecordBinding { rec: lr, map: lmap }) {
                Ok(v) => v,
                Err(_) => return false,
            },
        };
        let (a, b) = if sp.probe_is_lhs { (&pv, fv) } else { (fv, &pv) };
        matches!(eval_binop(sp.op, a, b), Ok(zstream_events::Value::Bool(true)))
    })
}

fn preds_pass(
    preds: &[TypedExpr],
    skip: &[usize],
    binding: &impl EventBinding,
    optional_mask: u64,
) -> bool {
    preds
        .iter()
        .enumerate()
        .all(|(i, p)| skip.contains(&i) || pred_passes(p, binding, optional_mask))
}

fn eval_conj(nodes: &mut [Node], k: usize, left: usize, right: usize, ctx: &EvalCtx) {
    if let Some(spec) = nodes[k].hash.clone() {
        let (before, rest) = nodes.split_at_mut(k);
        rest[0].hash_left.sync(&before[left].buf, &before[left].map, &spec.left);
        rest[0].hash_right.sync(&before[right].buf, &before[right].map, &spec.right);
    }
    let (before, rest) = nodes.split_at_mut(k);
    let node = &mut rest[0];
    let lnode = &before[left];
    let rnode = &before[right];

    let mut lc = lnode.buf.consumed();
    let mut rc = rnode.buf.consumed();
    let mut candidates: Vec<u32> = Vec::new();

    while lc < lnode.buf.len() || rc < rnode.buf.len() {
        // Algorithm 3 line 5: advance the side with the earlier end
        // timestamp (ties advance the left).
        let take_left = match (lc < lnode.buf.len(), rc < rnode.buf.len()) {
            (true, true) => lnode.buf.get(lc).end_ts() <= rnode.buf.get(rc).end_ts(),
            (l, _) => l,
        };
        let (pr, pr_map, other, other_map, bound, probe_right) = if take_left {
            let pr = lnode.buf.get(lc);
            lc += 1;
            (pr, &lnode.map, rnode, &rnode.map, rc, true)
        } else {
            let pr = rnode.buf.get(rc);
            rc += 1;
            (pr, &rnode.map, lnode, &lnode.map, lc, false)
        };
        // Candidates: records of the other side already consumed.
        candidates.clear();
        let mut hash_used = false;
        if let Some(spec) = &node.hash {
            let parts = if probe_right { &spec.left } else { &spec.right };
            if let Some(key) = HashIndex::key_of(pr, pr_map, parts) {
                let idx = if probe_right { &node.hash_right } else { &node.hash_left };
                candidates
                    .extend(idx.probe(&key).iter().copied().filter(|&i| (i as usize) < bound));
                candidates.extend(idx.unkeyed().iter().copied().filter(|&i| (i as usize) < bound));
                hash_used = true;
            }
        }
        if !hash_used {
            candidates.extend(0..bound as u32);
        }
        for &bi in &candidates {
            let br = other.buf.get(bi as usize);
            let span_start = pr.start_ts().min(br.start_ts());
            let span_end = pr.end_ts().max(br.end_ts());
            if span_end - span_start > ctx.window {
                continue;
            }
            // Positional slots: left-child classes first.
            let (lrec, rrec, lmap2, rmap2) =
                if take_left { (pr, br, pr_map, other_map) } else { (br, pr, other_map, pr_map) };
            let binding = PairBinding {
                left: RecordBinding { rec: lrec, map: lmap2 },
                right: RecordBinding { rec: rrec, map: rmap2 },
            };
            let covered: &[usize] =
                if hash_used { node.hash.as_ref().map_or(&[], |s| &s.covered_preds) } else { &[] };
            if !preds_pass(&node.preds, covered, &binding, ctx.optional_mask) {
                continue;
            }
            node.buf.push(Record::combine(lrec, rrec));
        }
    }
    before[left].buf.set_consumed(lc);
    before[right].buf.set_consumed(rc);
}

fn eval_disj(nodes: &mut [Node], k: usize, left: usize, right: usize) {
    let (before, rest) = nodes.split_at_mut(k);
    let node = &mut rest[0];
    let lnode = &before[left];
    let rnode = &before[right];
    let lwidth = lnode.classes.len();
    let rwidth = rnode.classes.len();

    let mut lc = lnode.buf.consumed();
    let mut rc = rnode.buf.consumed();
    while lc < lnode.buf.len() || rc < rnode.buf.len() {
        let take_left = match (lc < lnode.buf.len(), rc < rnode.buf.len()) {
            (true, true) => lnode.buf.get(lc).end_ts() <= rnode.buf.get(rc).end_ts(),
            (l, _) => l,
        };
        let rec = if take_left {
            let r = lnode.buf.get(lc);
            lc += 1;
            let mut slots: Vec<Slot> = r.slots().to_vec();
            slots.extend(std::iter::repeat_with(|| Slot::None).take(rwidth));
            Record::from_slots_with_span(slots, r.start_ts(), r.end_ts())
        } else {
            let r = rnode.buf.get(rc);
            rc += 1;
            let mut slots: Vec<Slot> = std::iter::repeat_with(|| Slot::None).take(lwidth).collect();
            slots.extend(r.slots().iter().cloned());
            Record::from_slots_with_span(slots, r.start_ts(), r.end_ts())
        };
        node.buf.push(rec);
    }
    finish_consume(nodes, left);
    finish_consume(nodes, right);
}

fn eval_nseq(nodes: &mut [Node], k: usize, ctx: &EvalCtx) {
    let NodeKind::Nseq { ref negs, right } = nodes[k].kind else { unreachable!() };
    let negs = negs.clone();
    let neg_mask: u64 = negs.iter().map(|ni| nodes[*ni].mask()).fold(0, |a, b| a | b);
    let neg_classes: Vec<ClassId> = negs.iter().map(|ni| nodes[*ni].classes[0]).collect();

    let (before, rest) = nodes.split_at_mut(k);
    let node = &mut rest[0];
    let rnode = &before[right];

    for ri in rnode.buf.consumed()..rnode.buf.len() {
        let rr = rnode.buf.get(ri);
        // Algorithm 2: scan each negation buffer backward for the latest
        // instance before rr that satisfies the value constraints.
        let mut best: Option<(Ts, ClassId, EventRef)> = None;
        for (gi, &ni) in negs.iter().enumerate() {
            let nb = &before[ni];
            let nclass = neg_classes[gi];
            let hi = nb.buf.prefix_end_before(rr.start_ts());
            for j in (0..hi).rev() {
                let b = nb.buf.get(j);
                let bts = b.end_ts();
                if best.as_ref().is_some_and(|(bt, _, _)| bts <= *bt) {
                    break; // cannot beat the best found so far
                }
                let Some(ev) = b.slot(0).as_one() else { continue };
                let binding = WithEventBinding {
                    base: RecordBinding { rec: rr, map: &rnode.map },
                    class: nclass,
                    event: ev,
                };
                // Other negation classes stay legitimately unbound while
                // this candidate is tested.
                let optional = ctx.optional_mask | (neg_mask & !(1u64 << nclass));
                if preds_pass(&node.preds, &[], &binding, optional) {
                    best = Some((bts, nclass, ev.clone()));
                    break;
                }
            }
        }
        // Emit (b, Rr) or (NULL, Rr); the span excludes the negation event.
        let mut slots: Vec<Slot> = neg_classes
            .iter()
            .map(|nc| match &best {
                Some((_, c, ev)) if c == nc => Slot::One(ev.clone()),
                _ => Slot::None,
            })
            .collect();
        slots.extend(rr.slots().iter().cloned());
        node.buf.push(Record::from_slots_with_span(slots, rr.start_ts(), rr.end_ts()));
    }
    finish_consume(nodes, right);
}

/// Binding used by KSEQ: optional start and end records plus (optionally) a
/// candidate middle event or a full closure group.
struct KseqBinding<'a> {
    start: Option<RecordBinding<'a>>,
    end: Option<RecordBinding<'a>>,
    closure_class: ClassId,
    mid_event: Option<&'a EventRef>,
    mid_group: &'a [EventRef],
}

impl EventBinding for KseqBinding<'_> {
    fn event(&self, class: ClassId) -> Option<&EventRef> {
        if class == self.closure_class {
            return self.mid_event;
        }
        self.start
            .as_ref()
            .and_then(|b| b.event(class))
            .or_else(|| self.end.as_ref().and_then(|b| b.event(class)))
    }

    fn closure(&self, class: ClassId) -> &[EventRef] {
        if class == self.closure_class {
            if let Some(e) = self.mid_event {
                return std::slice::from_ref(e);
            }
            return self.mid_group;
        }
        &[]
    }
}

fn eval_kseq(nodes: &mut [Node], k: usize, ctx: &EvalCtx) {
    let NodeKind::Kseq { start, closure, kind, end } = nodes[k].kind else { unreachable!() };
    let closure_class = nodes[closure].classes[0];
    let (before, rest) = nodes.split_at_mut(k);
    let node = &mut rest[0];
    let mbuf = &before[closure].buf;

    match end {
        Some(e) => {
            // Algorithm 4: the end buffer drives (outer loop), start inner.
            let enode = &before[e];
            for ei in enode.buf.consumed()..enode.buf.len() {
                let er = enode.buf.get(ei);
                let starts: Vec<Option<usize>> = match start {
                    Some(s) => {
                        (0..before[s].buf.prefix_end_before(er.start_ts())).map(Some).collect()
                    }
                    None => vec![None],
                };
                for si in starts {
                    let sr = si.map(|i| before[start.expect("si bound")].buf.get(i));
                    emit_kseq_groups(
                        node,
                        start.map(|s| &before[s]),
                        sr,
                        mbuf,
                        closure_class,
                        kind,
                        Some((&before[e], er)),
                        ctx,
                    );
                }
            }
            finish_consume(nodes, e);
        }
        None => {
            // Counted closure ends the pattern: each new middle event can
            // complete a group of exactly `cc` qualifying events.
            let KleeneKind::Count(_) = kind else {
                unreachable!("unbounded trailing closures are rejected at plan time")
            };
            for mi in mbuf.consumed()..mbuf.len() {
                let m_end = mbuf.get(mi).end_ts();
                let starts: Vec<Option<usize>> = match start {
                    Some(s) => (0..before[s].buf.prefix_end_before(m_end)).map(Some).collect(),
                    None => vec![None],
                };
                for si in starts {
                    let sr = si.map(|i| before[start.expect("si bound")].buf.get(i));
                    emit_trailing_group(
                        node,
                        start.map(|s| &before[s]),
                        sr,
                        mbuf,
                        mi,
                        closure_class,
                        kind,
                        ctx,
                    );
                }
            }
            finish_consume(nodes, closure);
        }
    }
}

/// Collects qualifying middle events strictly between `sr.end` and
/// `er.start` and emits the group(s) per the closure kind.
#[allow(clippy::too_many_arguments)]
fn emit_kseq_groups(
    node: &mut Node,
    snode: Option<&Node>,
    sr: Option<&Record>,
    mbuf: &crate::physical::buffer::Buffer,
    closure_class: ClassId,
    kind: KleeneKind,
    er: Option<(&Node, &Record)>,
    ctx: &EvalCtx,
) {
    let lo_sr = match sr {
        Some(s) => mbuf.first_end_at_or_after(s.end_ts() + 1),
        None => 0,
    };
    // Closure events must fit in the window ending at the end anchor; this
    // bounds the "maximal group" of unanchored closures explicitly (rather
    // than implicitly through EAT pruning, which may be disabled).
    let lo_window = match er {
        Some((_, e)) => mbuf.first_end_at_or_after(e.end_ts().saturating_sub(ctx.window)),
        None => 0,
    };
    let lo = lo_sr.max(lo_window);
    let hi = match er {
        Some((_, e)) => mbuf.prefix_end_before(e.start_ts()),
        None => mbuf.len(),
    };
    let mut qualifying: Vec<EventRef> = Vec::new();
    for j in lo..hi {
        let m = mbuf.get(j);
        let Some(ev) = m.slot(0).as_one() else { continue };
        let binding = KseqBinding {
            start: sr.map(|r| RecordBinding { rec: r, map: &snode.expect("sr bound").map }),
            end: er.map(|(en, r)| RecordBinding { rec: r, map: &en.map }),
            closure_class,
            mid_event: Some(ev),
            mid_group: &[],
        };
        if node.event_preds.iter().all(|p| pred_passes(p, &binding, ctx.optional_mask)) {
            qualifying.push(ev.clone());
        }
    }
    match kind {
        KleeneKind::Star => {
            emit_group(node, snode, sr, &qualifying, closure_class, er, ctx);
        }
        KleeneKind::Plus => {
            if !qualifying.is_empty() {
                emit_group(node, snode, sr, &qualifying, closure_class, er, ctx);
            }
        }
        KleeneKind::Count(cc) => {
            let cc = cc as usize;
            if qualifying.len() >= cc {
                for w in 0..=qualifying.len() - cc {
                    emit_group(node, snode, sr, &qualifying[w..w + cc], closure_class, er, ctx);
                }
            }
        }
    }
}

/// Emits the group of exactly `cc` qualifying events ending at middle-buffer
/// index `mi` (trailing-closure mode).
#[allow(clippy::too_many_arguments)]
fn emit_trailing_group(
    node: &mut Node,
    snode: Option<&Node>,
    sr: Option<&Record>,
    mbuf: &crate::physical::buffer::Buffer,
    mi: usize,
    closure_class: ClassId,
    kind: KleeneKind,
    ctx: &EvalCtx,
) {
    let KleeneKind::Count(cc) = kind else { unreachable!() };
    let cc = cc as usize;
    let lo = match sr {
        Some(s) => mbuf.first_end_at_or_after(s.end_ts() + 1),
        None => 0,
    };
    // Walk backward from mi collecting qualifying events.
    let mut group_rev: Vec<EventRef> = Vec::with_capacity(cc);
    let mut j = mi + 1;
    while j > lo && group_rev.len() < cc {
        j -= 1;
        let m = mbuf.get(j);
        let Some(ev) = m.slot(0).as_one() else { continue };
        let binding = KseqBinding {
            start: sr.map(|r| RecordBinding { rec: r, map: &snode.expect("sr bound").map }),
            end: None,
            closure_class,
            mid_event: Some(ev),
            mid_group: &[],
        };
        if node.event_preds.iter().all(|p| pred_passes(p, &binding, ctx.optional_mask)) {
            group_rev.push(ev.clone());
        } else if j == mi {
            return; // the completing event itself must qualify
        }
    }
    if group_rev.len() < cc {
        return;
    }
    group_rev.reverse();
    emit_group(node, snode, sr, &group_rev, closure_class, None, ctx);
}

fn emit_group(
    node: &mut Node,
    snode: Option<&Node>,
    sr: Option<&Record>,
    group: &[EventRef],
    closure_class: ClassId,
    er: Option<(&Node, &Record)>,
    ctx: &EvalCtx,
) {
    let _ = closure_class;
    let mut slots: Vec<Slot> = Vec::new();
    if let Some(s) = sr {
        slots.extend(s.slots().iter().cloned());
    }
    slots.push(Slot::Many(group.to_vec().into()));
    if let Some((_, e)) = er {
        slots.extend(e.slots().iter().cloned());
    }
    let rec = Record::from_slots(slots);
    if rec.end_ts() - rec.start_ts() > ctx.window {
        return;
    }
    // Group-level predicates (aggregates and start/end predicates).
    let binding = RecordBinding { rec: &rec, map: &node.map };
    let _ = (snode, er);
    if !node.preds.iter().all(|p| pred_passes(p, &binding, ctx.optional_mask)) {
        return;
    }
    node.buf.push(rec);
}

fn eval_negtop(nodes: &mut [Node], k: usize, ctx: &EvalCtx) {
    let NodeKind::NegTop { input, ref negs, prev, next } = nodes[k].kind else { unreachable!() };
    let negs = negs.clone();
    let neg_mask: u64 = negs.iter().map(|ni| nodes[*ni].mask()).fold(0, |a, b| a | b);
    let neg_classes: Vec<ClassId> = negs.iter().map(|ni| nodes[*ni].classes[0]).collect();

    let (before, rest) = nodes.split_at_mut(k);
    let node = &mut rest[0];
    let inode = &before[input];

    // Record-level predicates (no negation classes) vs. candidate
    // predicates (touch a negation class).
    let (cand_preds, rec_preds): (Vec<&TypedExpr>, Vec<&TypedExpr>) =
        node.preds.iter().partition(|p| p.class_mask() & neg_mask != 0);

    for ri in inode.buf.consumed()..inode.buf.len() {
        let rr = inode.buf.get(ri);
        let base = RecordBinding { rec: rr, map: &inode.map };
        if !rec_preds.iter().all(|p| pred_passes(p, &base, ctx.optional_mask)) {
            continue;
        }
        let prev_ts = node.map.slot_of(prev).and_then(|p| rr.slot(p).as_one()).map(|e| e.ts());
        let next_ts = node.map.slot_of(next).and_then(|p| rr.slot(p).as_one()).map(|e| e.ts());
        let (Some(prev_ts), Some(next_ts)) = (prev_ts, next_ts) else {
            // Defensive: anchors should always be bound for flat sequences.
            node.buf.push(rr.clone());
            continue;
        };
        // A negation instance b interleaves when prev.ts < b.ts < next.ts
        // and its predicates hold.
        let mut negated = false;
        'outer: for (gi, &ni) in negs.iter().enumerate() {
            let nb = &before[ni];
            let nclass = neg_classes[gi];
            let lo = nb.buf.first_end_at_or_after(prev_ts + 1);
            let hi = nb.buf.prefix_end_before(next_ts);
            for j in lo..hi {
                let Some(ev) = nb.buf.get(j).slot(0).as_one() else { continue };
                let binding = WithEventBinding {
                    base: RecordBinding { rec: rr, map: &inode.map },
                    class: nclass,
                    event: ev,
                };
                let optional = ctx.optional_mask | (neg_mask & !(1u64 << nclass));
                let relevant: Vec<&TypedExpr> = cand_preds
                    .iter()
                    .copied()
                    .filter(|p| p.class_mask() & (1u64 << nclass) != 0)
                    .collect();
                if relevant.iter().all(|p| pred_passes(p, &binding, optional)) {
                    negated = true;
                    break 'outer;
                }
            }
        }
        if !negated {
            node.buf.push(rr.clone());
        }
    }
    finish_consume(nodes, input);
}
