//! Physical tree plans (§4.1).
//!
//! A [`PhysicalPlan`] is an arena of [`Node`]s. Leaf nodes store primitive
//! events as they arrive (one leaf per event class, with single-class
//! predicates applied at intake by the engine); internal nodes store the
//! intermediate composite events assembled from their children. Nodes are
//! created children-first, so ascending index order is a valid bottom-up
//! evaluation order.
//!
//! Buffer retention roles:
//! * leaves always retain records (consumed-cursor semantics) — this is the
//!   §5.3 modification that makes adaptive plan switching duplicate-free,
//! * internal nodes consumed as the right/outer input of SEQ, the inputs of
//!   DISJ, or the input of a NEG filter are *drained* after consumption
//!   (Algorithm 1's `Clear RBuf`),
//! * internal nodes consumed as SEQ-left or CONJ inputs retain records with
//!   cursors (Algorithm 3 keeps both sides).

use zstream_events::Ts;
use zstream_lang::{AnalyzedQuery, BinOp, ClassId, KleeneKind, TypedExpr, TypedPattern};

use crate::cost::dp::{PlanSpec, TopNeg, Unit, UnitKind};
use crate::cost::shape::PlanShape;
use crate::error::CoreError;
use crate::physical::binding::ClassMap;
use crate::physical::buffer::Buffer;
use crate::physical::hash::{HashIndex, HashSpec, KeyPart};

/// Build-time configuration toggles (ablation switches for the benches).
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Evaluate equality predicates through hash tables (§5.2.2).
    pub use_hash: bool,
    /// Prune buffers against the earliest allowed timestamp each round
    /// (§4.3). Disabling this is only safe for bounded inputs.
    pub eat_pruning: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig { use_hash: true, eat_pruning: true }
    }
}

/// A time guard added to a SEQ node above a pushed-down NSEQ (§4.4.2,
/// Figure 5): for a right record carrying a bound negation event `b`, only
/// left records with `end_ts >= b.ts` may combine.
#[derive(Debug, Clone)]
pub struct NegGuard {
    /// The negation classes whose bound slot in the right record bounds the
    /// left record's end timestamp.
    pub neg_classes: Vec<ClassId>,
}

/// The per-candidate side of a [`SplitPred`], pre-resolved against the left
/// child's record layout.
#[derive(Debug)]
pub enum ProbeSide {
    /// A bare attribute: slot position within a left-child record plus the
    /// field index — one slot load and one value fetch per candidate.
    Slot {
        /// Slot of the attribute's class in the left child's records.
        slot: usize,
        /// Field index within the event's schema.
        field: usize,
    },
    /// A general sub-expression over left-child classes, evaluated with a
    /// left-only binding.
    Expr(TypedExpr),
}

/// A comparison predicate at a SEQ node whose two operands come from
/// disjoint children: `left_side op right_side` with the left side's classes
/// all in the left child and the right side's all in the right child.
///
/// Algorithm 1's outer loop fixes one right record while scanning many left
/// candidates, so the right side is evaluated **once per right record** and
/// each candidate costs one probe plus one value comparison — instead of a
/// full expression-tree walk per pair. Only sound when every referenced
/// class is mandatory (`optional_mask == 0`); the evaluator falls back to
/// [`Node::preds`] otherwise.
#[derive(Debug)]
pub struct SplitPred {
    /// Index of the original predicate in [`Node::preds`] (to honor
    /// hash-coverage skips).
    pub pred: usize,
    /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
    pub op: BinOp,
    /// The per-candidate (left-child) operand.
    pub probe: ProbeSide,
    /// The per-right-record operand, evaluated once per outer record.
    pub fixed: TypedExpr,
    /// True when the probe is the *left* operand of `op` as written.
    pub probe_is_lhs: bool,
}

/// Operator kind and child links of one node.
#[derive(Debug)]
pub enum NodeKind {
    /// A leaf buffer for one event class.
    Leaf {
        /// The event class.
        class: ClassId,
    },
    /// Sequence (Algorithm 1): left followed by right.
    Seq {
        /// Left (earlier) child.
        left: usize,
        /// Right (later, outer-loop) child.
        right: usize,
    },
    /// Conjunction (Algorithm 3): both children in either order.
    Conj {
        /// Left child.
        left: usize,
        /// Right child.
        right: usize,
    },
    /// Disjunction: merge of the two children.
    Disj {
        /// Left child.
        left: usize,
        /// Right child.
        right: usize,
    },
    /// Negation push-down (Algorithm 2): find the negation instance that
    /// negates each right record.
    Nseq {
        /// Leaf node indexes of the negation classes.
        negs: Vec<usize>,
        /// The non-negated anchor child.
        right: usize,
    },
    /// Kleene closure (Algorithm 4): trinary start/closure/end.
    Kseq {
        /// Start-anchor child (absent when the closure opens the pattern).
        start: Option<usize>,
        /// The closure class's leaf node.
        closure: usize,
        /// Closure kind (star, plus, or an exact count).
        kind: KleeneKind,
        /// End-anchor child (absent for a counted closure ending the
        /// pattern).
        end: Option<usize>,
    },
    /// Negation as a final filter (the §4.4.2 "last-filter-step" baseline).
    NegTop {
        /// The positive plan underneath.
        input: usize,
        /// Leaf node indexes of the negation classes.
        negs: Vec<usize>,
        /// Class immediately before the negation in pattern order.
        prev: ClassId,
        /// Class immediately after the negation in pattern order.
        next: ClassId,
    },
}

/// One plan node: operator, output buffer, covered classes, predicates.
#[derive(Debug)]
pub struct Node {
    /// Operator kind and children.
    pub kind: NodeKind,
    /// Output buffer (input buffer, for leaves).
    pub buf: Buffer,
    /// Covered classes in slot order.
    pub classes: Vec<ClassId>,
    /// Class-to-slot map for `classes`.
    pub map: ClassMap,
    /// Multi-class predicates applied at this node (pair/record-level).
    pub preds: Vec<TypedExpr>,
    /// Split comparison predicates (SEQ only): the subset of `preds` whose
    /// operands separate cleanly across the two children, precompiled for
    /// per-right-record evaluation.
    pub split_preds: Vec<SplitPred>,
    /// `split_flag[i]` — whether `preds[i]` has a [`SplitPred`] twin (and is
    /// therefore skipped on the tree-walk path when the fast path runs).
    pub split_flag: Vec<bool>,
    /// Per-closure-event predicates (KSEQ only): evaluated for each
    /// candidate middle event during qualification.
    pub event_preds: Vec<TypedExpr>,
    /// Hash-join specification, when equality predicates at this node are
    /// evaluated by hashing.
    pub hash: Option<HashSpec>,
    /// Build-side hash index over the left child's buffer.
    pub hash_left: HashIndex,
    /// Build-side hash index over the right child's buffer (CONJ probes in
    /// both directions).
    pub hash_right: HashIndex,
    /// NSEQ time guards (on SEQ nodes above pushed-down negations).
    pub guards: Vec<NegGuard>,
    /// Whether the parent physically drains this buffer after consuming it.
    pub drain: bool,
}

impl Node {
    fn new(kind: NodeKind, classes: Vec<ClassId>, num_classes: usize) -> Node {
        let map = ClassMap::new(num_classes, &classes);
        Node {
            kind,
            buf: Buffer::new(),
            classes,
            map,
            preds: Vec::new(),
            split_preds: Vec::new(),
            split_flag: Vec::new(),
            event_preds: Vec::new(),
            hash: None,
            hash_left: HashIndex::new(),
            hash_right: HashIndex::new(),
            guards: Vec::new(),
            drain: false,
        }
    }

    /// Bitmask of covered classes.
    pub fn mask(&self) -> u64 {
        self.classes.iter().fold(0, |m, c| m | (1u64 << c))
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

/// A fully built physical plan.
#[derive(Debug)]
pub struct PhysicalPlan {
    /// Node arena; children precede parents.
    pub nodes: Vec<Node>,
    /// Index of the plan root (after any NEG filter chain).
    pub root: usize,
    /// Leaf node index per class.
    pub leaf_of_class: Vec<usize>,
    /// The query time window.
    pub window: Ts,
    /// Total number of pattern classes.
    pub num_classes: usize,
    /// Classes whose arrival can complete a match (drive assembly rounds and
    /// the EAT computation, §4.3).
    pub trigger_classes: Vec<ClassId>,
    /// Classes that may legitimately be unbound in an output (disjunction
    /// branches) — predicates referencing them pass vacuously.
    pub optional_mask: u64,
    /// Build-time configuration.
    pub config: PlanConfig,
}

impl PhysicalPlan {
    /// Builds a plan for a flat sequential pattern from a [`PlanSpec`]
    /// produced by the optimizer (or by [`crate::spec_with_shape`]).
    pub fn from_spec(
        aq: &AnalyzedQuery,
        spec: &PlanSpec,
        config: PlanConfig,
    ) -> Result<PhysicalPlan, CoreError> {
        spec.shape.validate(spec.units.len())?;
        let mut b = Builder::new(aq, config);
        let tree_root = b.build_shape(&spec.shape, &spec.units)?;
        let root = b.add_top_negs(tree_root, &spec.top_negs);
        b.finish(aq, root)
    }

    /// Builds a syntax-directed plan for patterns with conjunction or
    /// disjunction groups (no reordering; nested connectives evaluate
    /// left-deep). Negation and Kleene closure require the flat-sequence
    /// planner path.
    pub fn from_pattern(aq: &AnalyzedQuery, config: PlanConfig) -> Result<PhysicalPlan, CoreError> {
        let mut b = Builder::new(aq, config);
        let root = b.build_pattern(&aq.pattern)?;
        b.finish(aq, root)
    }

    /// Pretty multi-line rendering of the plan tree for examples and logs.
    pub fn render(&self, aq: &AnalyzedQuery) -> String {
        let mut out = String::new();
        self.render_node(aq, self.root, 0, &mut out);
        out
    }

    fn render_node(&self, aq: &AnalyzedQuery, idx: usize, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let node = &self.nodes[idx];
        let pad = "  ".repeat(depth);
        let name = |c: ClassId| aq.classes[c].name.as_str();
        let label = match &node.kind {
            NodeKind::Leaf { class } => format!("LEAF {}", name(*class)),
            NodeKind::Seq { .. } => "SEQ".to_string(),
            NodeKind::Conj { .. } => "CONJ".to_string(),
            NodeKind::Disj { .. } => "DISJ".to_string(),
            NodeKind::Nseq { .. } => "NSEQ".to_string(),
            NodeKind::Kseq { kind, .. } => format!("KSEQ {kind:?}"),
            NodeKind::NegTop { .. } => "NEG".to_string(),
        };
        let extras = [
            (!node.preds.is_empty()).then(|| format!("{} preds", node.preds.len())),
            node.hash.as_ref().map(|h| format!("hash x{}", h.left.len())),
            (!node.guards.is_empty()).then(|| "guarded".to_string()),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        if extras.is_empty() {
            let _ = writeln!(out, "{pad}{label}");
        } else {
            let _ = writeln!(out, "{pad}{label} [{extras}]");
        }
        let children: Vec<usize> = match &node.kind {
            NodeKind::Leaf { .. } => vec![],
            NodeKind::Seq { left, right }
            | NodeKind::Conj { left, right }
            | NodeKind::Disj { left, right } => vec![*left, *right],
            NodeKind::Nseq { negs, right } => negs.iter().copied().chain([*right]).collect(),
            NodeKind::Kseq { start, closure, end, .. } => {
                start.iter().copied().chain([*closure]).chain(end.iter().copied()).collect()
            }
            NodeKind::NegTop { input, negs, .. } => {
                [*input].into_iter().chain(negs.iter().copied()).collect()
            }
        };
        for c in children {
            self.render_node(aq, c, depth + 1, out);
        }
    }
}

struct Builder<'a> {
    aq: &'a AnalyzedQuery,
    nodes: Vec<Node>,
    leaf_of_class: Vec<usize>,
    config: PlanConfig,
}

impl<'a> Builder<'a> {
    fn new(aq: &'a AnalyzedQuery, config: PlanConfig) -> Builder<'a> {
        let n = aq.num_classes();
        let mut nodes = Vec::with_capacity(2 * n);
        let mut leaf_of_class = Vec::with_capacity(n);
        for c in 0..n {
            leaf_of_class.push(nodes.len());
            nodes.push(Node::new(NodeKind::Leaf { class: c }, vec![c], n));
        }
        Builder { aq, nodes, leaf_of_class, config }
    }

    fn push_node(&mut self, kind: NodeKind, classes: Vec<ClassId>) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(Node::new(kind, classes, self.aq.num_classes()));
        idx
    }

    /// Marks `child` as drained-by-parent if it is an internal node (leaves
    /// always retain).
    fn mark_drain(&mut self, child: usize) {
        if !self.nodes[child].is_leaf() {
            self.nodes[child].drain = true;
        }
    }

    fn build_unit(&mut self, unit: &Unit) -> Result<usize, CoreError> {
        match &unit.kind {
            UnitKind::Class(c) => Ok(self.leaf_of_class[*c]),
            UnitKind::Kseq { start, closure, kind, end } => {
                let start_n = start.map(|c| self.leaf_of_class[c]);
                let end_n = end.map(|c| self.leaf_of_class[c]);
                let closure_n = self.leaf_of_class[*closure];
                Ok(self.push_node(
                    NodeKind::Kseq { start: start_n, closure: closure_n, kind: *kind, end: end_n },
                    unit.classes(),
                ))
            }
            UnitKind::Nseq { neg, anchor } => {
                let negs = neg.iter().map(|c| self.leaf_of_class[*c]).collect();
                let right = self.leaf_of_class[*anchor];
                Ok(self.push_node(NodeKind::Nseq { negs, right }, unit.classes()))
            }
        }
    }

    fn build_shape(&mut self, shape: &PlanShape, units: &[Unit]) -> Result<usize, CoreError> {
        match shape {
            PlanShape::Leaf(u) => self.build_unit(&units[*u]),
            PlanShape::Join(l, r) => {
                let li = self.build_shape(l, units)?;
                let ri = self.build_shape(r, units)?;
                self.mark_drain(ri);
                let mut classes = self.nodes[li].classes.clone();
                classes.extend(&self.nodes[ri].classes);
                let idx = self.push_node(NodeKind::Seq { left: li, right: ri }, classes);
                // Guard when the right subtree opens with a pushed-down NSEQ.
                let cut = r.range().0;
                if let UnitKind::Nseq { neg, .. } = &units[cut].kind {
                    self.nodes[idx].guards.push(NegGuard { neg_classes: neg.clone() });
                }
                Ok(idx)
            }
        }
    }

    fn add_top_negs(&mut self, mut root: usize, top_negs: &[TopNeg]) -> usize {
        for tn in top_negs {
            self.mark_drain(root);
            let negs = tn.neg.iter().map(|c| self.leaf_of_class[*c]).collect();
            let classes = self.nodes[root].classes.clone();
            root = self.push_node(
                NodeKind::NegTop { input: root, negs, prev: tn.prev, next: tn.next },
                classes,
            );
        }
        root
    }

    fn build_pattern(&mut self, p: &TypedPattern) -> Result<usize, CoreError> {
        match p {
            TypedPattern::Class(c) => Ok(self.leaf_of_class[*c]),
            TypedPattern::Seq(xs) => {
                let mut cur = self.build_pattern(&xs[0])?;
                for x in &xs[1..] {
                    let r = self.build_pattern(x)?;
                    self.mark_drain(r);
                    let mut classes = self.nodes[cur].classes.clone();
                    classes.extend(&self.nodes[r].classes);
                    cur = self.push_node(NodeKind::Seq { left: cur, right: r }, classes);
                }
                Ok(cur)
            }
            TypedPattern::Conj(xs) => {
                let mut cur = self.build_pattern(&xs[0])?;
                for x in &xs[1..] {
                    let r = self.build_pattern(x)?;
                    let mut classes = self.nodes[cur].classes.clone();
                    classes.extend(&self.nodes[r].classes);
                    cur = self.push_node(NodeKind::Conj { left: cur, right: r }, classes);
                }
                Ok(cur)
            }
            TypedPattern::Disj(xs) => {
                let mut cur = self.build_pattern(&xs[0])?;
                for x in &xs[1..] {
                    let r = self.build_pattern(x)?;
                    self.mark_drain(cur);
                    self.mark_drain(r);
                    let mut classes = self.nodes[cur].classes.clone();
                    classes.extend(&self.nodes[r].classes);
                    cur = self.push_node(NodeKind::Disj { left: cur, right: r }, classes);
                }
                Ok(cur)
            }
            TypedPattern::Neg(_) | TypedPattern::Kleene(_, _) => {
                Err(CoreError::UnsupportedPattern(
                    "negation and Kleene closure require a flat sequential pattern \
                 (planned via PlanSpec); mixed nesting is not supported"
                        .into(),
                ))
            }
        }
    }

    /// Assigns multi-class predicates to their lowest covering internal
    /// node, configures hash joins, and computes plan-level metadata.
    fn finish(mut self, aq: &AnalyzedQuery, root: usize) -> Result<PhysicalPlan, CoreError> {
        // Virtual masks: NegTop nodes also "cover" their negation classes so
        // predicates over negated classes land on them.
        let virtual_mask: Vec<u64> = self
            .nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::NegTop { negs, .. } => {
                    let neg_mask: u64 =
                        negs.iter().map(|ni| self.nodes[*ni].mask()).fold(0, |a, b| a | b);
                    n.mask() | neg_mask
                }
                NodeKind::Nseq { .. } | NodeKind::Kseq { .. } => n.mask(),
                _ => n.mask(),
            })
            .collect();

        for mp in &aq.multi_preds {
            // Lowest covering internal node = first in child-before-parent
            // order. Constant predicates (mask 0) go to the root.
            let target = if mp.mask == 0 {
                Some(root)
            } else {
                (0..self.nodes.len())
                    .filter(|i| !self.nodes[*i].is_leaf() && reachable(&self.nodes, root, *i))
                    .find(|i| mp.mask & !virtual_mask[*i] == 0)
            };
            let Some(t) = target else {
                return Err(CoreError::UnsupportedPattern(format!(
                    "no plan node can evaluate a predicate over class mask {:#b}",
                    mp.mask
                )));
            };
            // KSEQ: predicates referencing the closure class without an
            // aggregate qualify each candidate middle event individually
            // (Algorithm 4's "Mr satisfies the value constraints").
            if let NodeKind::Kseq { closure, .. } = &self.nodes[t].kind {
                let closure_class = match self.nodes[*closure].kind {
                    NodeKind::Leaf { class } => class,
                    _ => unreachable!("closure child is a leaf"),
                };
                let refs_closure = mp.mask & (1u64 << closure_class) != 0;
                if refs_closure && !expr_has_agg(&mp.expr) {
                    self.nodes[t].event_preds.push(mp.expr.clone());
                    continue;
                }
            }
            self.nodes[t].preds.push(mp.expr.clone());
        }

        // Hash configuration (§5.2.2): at SEQ/CONJ nodes, equality
        // predicates whose two attributes come from different children form
        // a composite hash key.
        if self.config.use_hash {
            for i in 0..self.nodes.len() {
                let (li, ri) = match self.nodes[i].kind {
                    NodeKind::Seq { left, right } | NodeKind::Conj { left, right } => (left, right),
                    _ => continue,
                };
                let lmask = self.nodes[li].mask();
                let rmask = self.nodes[ri].mask();
                let mut spec = HashSpec { left: vec![], right: vec![], covered_preds: vec![] };
                for (pi, pred) in self.nodes[i].preds.iter().enumerate() {
                    if let Some(((c1, f1), (c2, f2))) = as_equality(pred) {
                        let (lpart, rpart) =
                            if lmask & (1u64 << c1) != 0 && rmask & (1u64 << c2) != 0 {
                                ((c1, f1), (c2, f2))
                            } else if lmask & (1u64 << c2) != 0 && rmask & (1u64 << c1) != 0 {
                                ((c2, f2), (c1, f1))
                            } else {
                                continue;
                            };
                        spec.left.push(KeyPart { class: lpart.0, field: lpart.1 });
                        spec.right.push(KeyPart { class: rpart.0, field: rpart.1 });
                        spec.covered_preds.push(pi);
                    }
                }
                if !spec.covered_preds.is_empty() {
                    self.nodes[i].hash = Some(spec);
                }
            }
        }

        // Split-predicate compilation: at SEQ nodes, a comparison whose two
        // operands draw from disjoint children evaluates its right-child side
        // once per outer record (see `SplitPred`).
        for i in 0..self.nodes.len() {
            let NodeKind::Seq { left, .. } = self.nodes[i].kind else {
                self.nodes[i].split_flag = vec![false; self.nodes[i].preds.len()];
                continue;
            };
            let lmask = self.nodes[left].mask();
            let (mut splits, mut flags) = (Vec::new(), Vec::new());
            for (pi, pred) in self.nodes[i].preds.iter().enumerate() {
                let split = split_comparison(pred, lmask, &self.nodes[left].map).map(
                    |(op, probe, fixed, probe_is_lhs)| SplitPred {
                        pred: pi,
                        op,
                        probe,
                        fixed,
                        probe_is_lhs,
                    },
                );
                flags.push(split.is_some());
                splits.extend(split);
            }
            self.nodes[i].split_preds = splits;
            self.nodes[i].split_flag = flags;
        }

        let trigger_classes = trigger_classes(&aq.pattern);
        let optional_mask = optional_mask(&aq.pattern, false);
        Ok(PhysicalPlan {
            nodes: self.nodes,
            root,
            leaf_of_class: self.leaf_of_class,
            window: aq.window,
            num_classes: aq.num_classes(),
            trigger_classes,
            optional_mask,
            config: self.config,
        })
    }
}

/// True when node `target` is reachable from `root` through child links
/// (units may create nodes that a later shape choice does not use — they
/// must not receive predicates).
fn reachable(nodes: &[Node], root: usize, target: usize) -> bool {
    if root == target {
        return true;
    }
    let children: Vec<usize> = match &nodes[root].kind {
        NodeKind::Leaf { .. } => vec![],
        NodeKind::Seq { left, right }
        | NodeKind::Conj { left, right }
        | NodeKind::Disj { left, right } => vec![*left, *right],
        NodeKind::Nseq { negs, right } => negs.iter().copied().chain([*right]).collect(),
        NodeKind::Kseq { start, closure, end, .. } => {
            start.iter().copied().chain([*closure]).chain(end.iter().copied()).collect()
        }
        NodeKind::NegTop { input, negs, .. } => {
            [*input].into_iter().chain(negs.iter().copied()).collect()
        }
    };
    children.into_iter().any(|c| reachable(nodes, c, target))
}

fn expr_has_agg(e: &TypedExpr) -> bool {
    match e {
        TypedExpr::Agg { .. } => true,
        TypedExpr::Attr { .. } | TypedExpr::Lit(_) => false,
        TypedExpr::Unary(_, x) => expr_has_agg(x),
        TypedExpr::Binary(_, l, r) => expr_has_agg(l) || expr_has_agg(r),
    }
}

/// Tries to split a comparison predicate across a SEQ node's children:
/// returns `(op, probe over left-child classes, fixed over right-child
/// classes, probe_is_lhs)` when one operand's classes all come from the left
/// child (`lmask`) and the other operand references none of them.
fn split_comparison(
    e: &TypedExpr,
    lmask: u64,
    lmap: &ClassMap,
) -> Option<(BinOp, ProbeSide, TypedExpr, bool)> {
    let TypedExpr::Binary(op, l, r) = e else { return None };
    if !matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
        return None;
    }
    let (lm, rm) = (l.class_mask(), r.class_mask());
    let (probe, fixed, probe_is_lhs) = if lm != 0 && lm & !lmask == 0 && rm & lmask == 0 {
        (l, r, true)
    } else if rm != 0 && rm & !lmask == 0 && lm & lmask == 0 {
        (r, l, false)
    } else {
        return None;
    };
    let probe = match probe.as_ref() {
        TypedExpr::Attr { class, field, .. } => match lmap.slot_of(*class) {
            Some(slot) => ProbeSide::Slot { slot, field: *field },
            None => ProbeSide::Expr((**probe).clone()),
        },
        other => ProbeSide::Expr(other.clone()),
    };
    Some((*op, probe, (**fixed).clone(), probe_is_lhs))
}

/// Destructures `A.f = B.g` with distinct classes.
fn as_equality(e: &TypedExpr) -> Option<((ClassId, usize), (ClassId, usize))> {
    if let TypedExpr::Binary(BinOp::Eq, l, r) = e {
        if let (
            TypedExpr::Attr { class: c1, field: f1, .. },
            TypedExpr::Attr { class: c2, field: f2, .. },
        ) = (l.as_ref(), r.as_ref())
        {
            if c1 != c2 {
                return Some(((*c1, *f1), (*c2, *f2)));
            }
        }
    }
    None
}

/// Classes whose arrival can complete a match: the last element of a
/// sequence, every class of a conjunction, either side of a disjunction.
pub fn trigger_classes(p: &TypedPattern) -> Vec<ClassId> {
    match p {
        TypedPattern::Class(c) | TypedPattern::Kleene(c, _) => vec![*c],
        TypedPattern::Seq(xs) => {
            // The last element is positive (analysis guarantees at least one
            // non-negated element; trailing negations are rejected by the
            // planner, but fall back to scanning backwards defensively).
            for x in xs.iter().rev() {
                if !matches!(x, TypedPattern::Neg(_)) {
                    return trigger_classes(x);
                }
            }
            vec![]
        }
        TypedPattern::Conj(xs) | TypedPattern::Disj(xs) => {
            xs.iter().flat_map(trigger_classes).collect()
        }
        TypedPattern::Neg(_) => vec![],
    }
}

/// Bitmask of classes that can be legitimately unbound in an output record
/// (classes under a disjunction with at least two branches).
pub fn optional_mask(p: &TypedPattern, under_disj: bool) -> u64 {
    match p {
        TypedPattern::Class(c) | TypedPattern::Kleene(c, _) => {
            if under_disj {
                1u64 << c
            } else {
                0
            }
        }
        TypedPattern::Seq(xs) | TypedPattern::Conj(xs) => {
            xs.iter().map(|x| optional_mask(x, under_disj)).fold(0, |a, b| a | b)
        }
        TypedPattern::Disj(xs) => {
            xs.iter().map(|x| optional_mask(x, xs.len() > 1)).fold(0, |a, b| a | b)
        }
        TypedPattern::Neg(x) => optional_mask(x, under_disj),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::dp::{search_optimal, spec_with_shape, NegStrategy};
    use crate::cost::stats::Statistics;
    use zstream_events::Schema;
    use zstream_lang::{analyze, Query, SchemaMap};

    fn aq(src: &str) -> AnalyzedQuery {
        analyze(&Query::parse(src).unwrap(), &SchemaMap::uniform(Schema::stocks())).unwrap()
    }

    fn plan_for(src: &str) -> (AnalyzedQuery, PhysicalPlan) {
        let q = aq(src);
        let stats = Statistics::uniform(q.num_classes(), q.multi_preds.len(), q.window);
        let spec = search_optimal(&q, &stats).unwrap();
        let plan = PhysicalPlan::from_spec(&q, &spec, PlanConfig::default()).unwrap();
        (q, plan)
    }

    #[test]
    fn children_precede_parents() {
        let (_, plan) = plan_for("PATTERN A; B; C; D WITHIN 10");
        for (i, n) in plan.nodes.iter().enumerate() {
            let kids: Vec<usize> = match &n.kind {
                NodeKind::Leaf { .. } => vec![],
                NodeKind::Seq { left, right }
                | NodeKind::Conj { left, right }
                | NodeKind::Disj { left, right } => vec![*left, *right],
                NodeKind::Nseq { negs, right } => negs.iter().copied().chain([*right]).collect(),
                NodeKind::Kseq { start, closure, end, .. } => {
                    start.iter().copied().chain([*closure]).chain(end.iter().copied()).collect()
                }
                NodeKind::NegTop { input, negs, .. } => {
                    [*input].into_iter().chain(negs.iter().copied()).collect()
                }
            };
            for k in kids {
                assert!(k < i, "child {k} should precede parent {i}");
            }
        }
    }

    #[test]
    fn predicates_land_on_lowest_covering_node() {
        let q = aq("PATTERN A; B; C WHERE A.price > B.price WITHIN 10");
        let stats = Statistics::uniform(3, 1, 10);
        let spec =
            spec_with_shape(&q, &stats, PlanShape::left_deep(3), NegStrategy::PushdownPreferred)
                .unwrap();
        let plan = PhysicalPlan::from_spec(&q, &spec, PlanConfig::default()).unwrap();
        // Left-deep: SEQ(A,B) gets the predicate; SEQ((A,B),C) gets none.
        let seq_ab = plan
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Seq { .. }) && n.classes == vec![0, 1])
            .unwrap();
        assert_eq!(seq_ab.preds.len(), 1);
        let seq_abc = plan.nodes.iter().find(|n| n.classes == vec![0, 1, 2]).unwrap();
        assert!(seq_abc.preds.is_empty());
        // Right-deep: the predicate can only apply at the top.
        let spec =
            spec_with_shape(&q, &stats, PlanShape::right_deep(3), NegStrategy::PushdownPreferred)
                .unwrap();
        let plan = PhysicalPlan::from_spec(&q, &spec, PlanConfig::default()).unwrap();
        let top = &plan.nodes[plan.root];
        assert_eq!(top.preds.len(), 1);
    }

    #[test]
    fn equality_predicates_become_hash_joins() {
        let q = aq("PATTERN A; B; C WHERE A.name = C.name WITHIN 10");
        let stats = Statistics::uniform(3, 1, 10);
        let spec =
            spec_with_shape(&q, &stats, PlanShape::left_deep(3), NegStrategy::PushdownPreferred)
                .unwrap();
        let plan = PhysicalPlan::from_spec(&q, &spec, PlanConfig::default()).unwrap();
        let top = &plan.nodes[plan.root];
        let hash = top.hash.as_ref().expect("equality should hash");
        assert_eq!(hash.left, vec![KeyPart { class: 0, field: 1 }]);
        assert_eq!(hash.right, vec![KeyPart { class: 2, field: 1 }]);
        assert_eq!(hash.covered_preds, vec![0]);

        // With hashing disabled the predicate evaluates normally.
        let plan = PhysicalPlan::from_spec(
            &q,
            &spec,
            PlanConfig { use_hash: false, ..Default::default() },
        )
        .unwrap();
        assert!(plan.nodes[plan.root].hash.is_none());
    }

    #[test]
    fn nseq_plan_has_guard_above() {
        let (_, plan) = plan_for("PATTERN IBM; !Sun; Oracle WITHIN 200");
        let nseq = plan
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Nseq { .. }))
            .expect("uniform stats choose push-down");
        assert_eq!(nseq.classes, vec![1, 2]);
        let top = &plan.nodes[plan.root];
        assert_eq!(top.guards.len(), 1);
        assert_eq!(top.guards[0].neg_classes, vec![1]);
    }

    #[test]
    fn kseq_event_preds_split_from_group_preds() {
        let q = aq("PATTERN T1; T2^2; T3 \
             WHERE sum(T2.volume) > 10 AND T2.price > T1.price \
             WITHIN 10");
        let stats = Statistics::uniform(3, 2, 10);
        let spec = search_optimal(&q, &stats).unwrap();
        let plan = PhysicalPlan::from_spec(&q, &spec, PlanConfig::default()).unwrap();
        let kseq = plan.nodes.iter().find(|n| matches!(n.kind, NodeKind::Kseq { .. })).unwrap();
        assert_eq!(kseq.preds.len(), 1, "aggregate stays a group predicate");
        assert_eq!(kseq.event_preds.len(), 1, "plain closure attr is per-event");
    }

    #[test]
    fn negtop_plan_covers_neg_predicates() {
        let q = aq("PATTERN IBM; !Sun; Oracle \
             WHERE Sun.price > IBM.price AND Sun.price < Oracle.price \
             WITHIN 200");
        let stats = Statistics::uniform(3, 2, 200);
        let spec = search_optimal(&q, &stats).unwrap();
        assert_eq!(spec.top_negs.len(), 1, "cross-side predicates force NEG-on-top");
        let plan = PhysicalPlan::from_spec(&q, &spec, PlanConfig::default()).unwrap();
        let top = &plan.nodes[plan.root];
        assert!(matches!(top.kind, NodeKind::NegTop { .. }));
        assert_eq!(top.preds.len(), 2);
    }

    #[test]
    fn syntax_directed_conj_disj() {
        let q = aq("PATTERN (A & B); (C | D) WITHIN 10");
        let plan = PhysicalPlan::from_pattern(&q, PlanConfig::default()).unwrap();
        assert!(plan.nodes.iter().any(|n| matches!(n.kind, NodeKind::Conj { .. })));
        assert!(plan.nodes.iter().any(|n| matches!(n.kind, NodeKind::Disj { .. })));
        assert_eq!(plan.optional_mask, 0b1100);
        let mut t = plan.trigger_classes.clone();
        t.sort_unstable();
        assert_eq!(t, vec![2, 3]);
    }

    #[test]
    fn trigger_classes_for_sequences() {
        let (_, plan) = plan_for("PATTERN A; B; C WITHIN 10");
        assert_eq!(plan.trigger_classes, vec![2]);
        let q = aq("PATTERN A & B WITHIN 10");
        let plan = PhysicalPlan::from_pattern(&q, PlanConfig::default()).unwrap();
        let mut t = plan.trigger_classes.clone();
        t.sort_unstable();
        assert_eq!(t, vec![0, 1]);
    }

    #[test]
    fn render_shows_tree() {
        let (q, plan) = plan_for("PATTERN IBM; !Sun; Oracle WITHIN 200");
        let s = plan.render(&q);
        assert!(s.contains("NSEQ"), "render: {s}");
        assert!(s.contains("LEAF IBM"));
    }
}
