//! Predicate bindings over buffer records.
//!
//! Predicates are [`TypedExpr`]s referencing classes by id; plan nodes cover
//! ordered subsets of classes, so each node carries a [`ClassMap`] from class
//! id to slot position. The binding adapters here let the same typed
//! expression evaluate during pair combination (SEQ/CONJ), against a single
//! record (NEG-on-top, KSEQ group predicates), against a record plus a
//! candidate negation event (NSEQ), and against a candidate closure event
//! (KSEQ per-event qualification).

use zstream_events::{EventRef, Record, Slot};
use zstream_lang::{ClassId, EvalError, EventBinding, TypedExpr};

/// Maps class ids to slot positions within a node's records.
#[derive(Debug, Clone, Default)]
pub struct ClassMap {
    pos: Vec<Option<u8>>,
}

impl ClassMap {
    /// Builds a map for a node covering `classes` (in slot order) out of
    /// `num_classes` total pattern classes.
    pub fn new(num_classes: usize, classes: &[ClassId]) -> ClassMap {
        let mut pos = vec![None; num_classes];
        for (i, c) in classes.iter().enumerate() {
            debug_assert!(pos[*c].is_none(), "class {c} mapped twice");
            pos[*c] = Some(u8::try_from(i).expect("at most 64 classes"));
        }
        ClassMap { pos }
    }

    /// Slot position of `class` within this node's records, if covered.
    #[inline]
    pub fn slot_of(&self, class: ClassId) -> Option<usize> {
        self.pos.get(class).copied().flatten().map(usize::from)
    }
}

fn slot_event<'a>(rec: &'a Record, map: &ClassMap, class: ClassId) -> Option<&'a EventRef> {
    let slot = map.slot_of(class)?;
    rec.slot(slot).as_one()
}

fn slot_closure<'a>(rec: &'a Record, map: &ClassMap, class: ClassId) -> &'a [EventRef] {
    match map.slot_of(class) {
        Some(slot) => match rec.slot(slot) {
            Slot::Many(_) => rec.slot(slot).events(),
            _ => &[],
        },
        None => &[],
    }
}

/// Binding over one record.
pub struct RecordBinding<'a> {
    /// The record.
    pub rec: &'a Record,
    /// Class-to-slot map of the owning node.
    pub map: &'a ClassMap,
}

impl EventBinding for RecordBinding<'_> {
    fn event(&self, class: ClassId) -> Option<&EventRef> {
        slot_event(self.rec, self.map, class)
    }

    fn closure(&self, class: ClassId) -> &[EventRef] {
        slot_closure(self.rec, self.map, class)
    }
}

/// Binding over a candidate (left, right) record pair during combination.
pub struct PairBinding<'a> {
    /// Left child record and map.
    pub left: RecordBinding<'a>,
    /// Right child record and map.
    pub right: RecordBinding<'a>,
}

impl EventBinding for PairBinding<'_> {
    fn event(&self, class: ClassId) -> Option<&EventRef> {
        self.left.event(class).or_else(|| self.right.event(class))
    }

    fn closure(&self, class: ClassId) -> &[EventRef] {
        let l = self.left.closure(class);
        if !l.is_empty() {
            l
        } else {
            self.right.closure(class)
        }
    }
}

/// Binding over a record plus one extra candidate event for a specific class
/// (NSEQ negation candidates; NEG-on-top interleaving checks; KSEQ per-event
/// closure qualification).
pub struct WithEventBinding<'a, B> {
    /// The base binding.
    pub base: B,
    /// The class the extra event binds.
    pub class: ClassId,
    /// The candidate event.
    pub event: &'a EventRef,
}

impl<B: EventBinding> EventBinding for WithEventBinding<'_, B> {
    fn event(&self, class: ClassId) -> Option<&EventRef> {
        if class == self.class {
            Some(self.event)
        } else {
            self.base.event(class)
        }
    }

    fn closure(&self, class: ClassId) -> &[EventRef] {
        if class == self.class {
            std::slice::from_ref(self.event)
        } else {
            self.base.closure(class)
        }
    }
}

/// Predicate evaluation policy for plan nodes: a predicate passes when it
/// evaluates to `true`, or when it references an unbound class that is
/// *optional* (left unbound by a disjunction branch) — vacuous truth. Any
/// other failure (type error, unbound mandatory class) fails closed.
#[inline]
pub fn pred_passes(expr: &TypedExpr, binding: &impl EventBinding, optional_mask: u64) -> bool {
    match expr.eval(binding) {
        Ok(zstream_events::Value::Bool(b)) => b,
        Err(EvalError::Unbound(c)) => optional_mask & (1u64 << c) != 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstream_events::{stock, Value, ValueType};
    use zstream_lang::{BinOp, TypedExpr};

    fn attr(class: ClassId, field: usize, ty: ValueType) -> TypedExpr {
        TypedExpr::Attr { class, field, ty }
    }

    #[test]
    fn class_map_positions() {
        let m = ClassMap::new(5, &[3, 1]);
        assert_eq!(m.slot_of(3), Some(0));
        assert_eq!(m.slot_of(1), Some(1));
        assert_eq!(m.slot_of(0), None);
        assert_eq!(m.slot_of(4), None);
    }

    #[test]
    fn pair_binding_resolves_both_sides() {
        let lrec = Record::primitive(stock(1, 1, "IBM", 10.0, 1));
        let rrec = Record::primitive(stock(2, 2, "Sun", 5.0, 1));
        let lmap = ClassMap::new(2, &[0]);
        let rmap = ClassMap::new(2, &[1]);
        let b = PairBinding {
            left: RecordBinding { rec: &lrec, map: &lmap },
            right: RecordBinding { rec: &rrec, map: &rmap },
        };
        // price (field 2) of class 0 > price of class 1
        let e = TypedExpr::Binary(
            BinOp::Gt,
            Box::new(attr(0, 2, ValueType::Float)),
            Box::new(attr(1, 2, ValueType::Float)),
        );
        assert!(pred_passes(&e, &b, 0));
    }

    #[test]
    fn unbound_optional_class_is_vacuous() {
        let rec = Record::primitive(stock(1, 1, "IBM", 10.0, 1));
        let map = ClassMap::new(2, &[0]);
        let b = RecordBinding { rec: &rec, map: &map };
        let e = TypedExpr::Binary(
            BinOp::Gt,
            Box::new(attr(1, 2, ValueType::Float)),
            Box::new(TypedExpr::Lit(Value::Float(0.0))),
        );
        assert!(!pred_passes(&e, &b, 0b01), "class 1 mandatory: fail closed");
        assert!(pred_passes(&e, &b, 0b10), "class 1 optional: vacuous pass");
    }

    #[test]
    fn with_event_binding_overrides_class() {
        let rec = Record::primitive(stock(1, 1, "IBM", 10.0, 1));
        let map = ClassMap::new(2, &[0]);
        let candidate = stock(5, 9, "Sun", 99.0, 1);
        let b = WithEventBinding {
            base: RecordBinding { rec: &rec, map: &map },
            class: 1,
            event: &candidate,
        };
        assert_eq!(b.event(1).unwrap().value(2).as_f64().unwrap(), 99.0);
        assert_eq!(b.event(0).unwrap().value(2).as_f64().unwrap(), 10.0);
        assert_eq!(b.closure(1).len(), 1);
    }
}
