//! Buffers (§4.2).
//!
//! Every plan node owns a buffer of [`Record`]s kept **sorted by end
//! timestamp** — the central invariant that lets operators consume children
//! in end-time order, emit in end-time order, and stop scanning at the first
//! out-of-time record.
//!
//! A buffer tracks a *consumed* cursor instead of physically deleting
//! records on consumption. This implements the §5.3 modification ("do not
//! perform Line 7 of Algorithm 1 for leaf buffers"): leaf buffers retain
//! events so a new plan can rebuild intermediate state after an adaptive
//! plan switch, while the cursor keeps each assembly round independent —
//! the combination of retained records and cursors yields exactly-once
//! output. Internal buffers in *drain* roles (right child of SEQ, inputs of
//! DISJ, the KSEQ end buffer, the root) are physically cleared after
//! consumption, matching Algorithm 1's `Clear RBuf`.

use std::collections::VecDeque;

use zstream_events::{Record, Ts};

/// A record buffer sorted by end timestamp with a consumed-front cursor.
#[derive(Debug, Default)]
pub struct Buffer {
    recs: VecDeque<Record>,
    /// Index of the first unconsumed record.
    consumed: usize,
    /// Logical memory accounting (bytes) for Tables 3/5.
    bytes: usize,
}

impl Buffer {
    /// An empty buffer.
    pub fn new() -> Buffer {
        Buffer::default()
    }

    /// Appends a record; end timestamps must be non-decreasing.
    pub fn push(&mut self, r: Record) {
        debug_assert!(
            self.recs.back().is_none_or(|last| last.end_ts() <= r.end_ts()),
            "buffer must stay sorted by end-ts: {} after {}",
            r.end_ts(),
            self.recs.back().map(Record::end_ts).unwrap_or(0),
        );
        self.bytes += r.footprint();
        self.recs.push_back(r);
    }

    /// Number of records currently stored (consumed + unconsumed).
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Logical footprint in bytes of all stored records.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The record at `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> &Record {
        &self.recs[idx]
    }

    /// Index of the first unconsumed record.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Number of unconsumed records.
    pub fn unconsumed_len(&self) -> usize {
        self.recs.len() - self.consumed
    }

    /// Iterates all records (consumed first).
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.recs.iter()
    }

    /// Iterates the unconsumed suffix.
    pub fn iter_unconsumed(&self) -> impl Iterator<Item = &Record> {
        self.recs.iter().skip(self.consumed)
    }

    /// Earliest end timestamp among unconsumed records (for EAT).
    pub fn earliest_unconsumed_end(&self) -> Option<Ts> {
        self.recs.get(self.consumed).map(Record::end_ts)
    }

    /// Marks every stored record consumed (a logical `Clear RBuf` for
    /// retained buffers).
    pub fn consume_all(&mut self) {
        self.consumed = self.recs.len();
    }

    /// Sets the consumed cursor (CONJ merge writes its cursors back).
    pub fn set_consumed(&mut self, consumed: usize) {
        debug_assert!(consumed <= self.recs.len());
        self.consumed = consumed;
    }

    /// Removes and returns every stored record (the engine draining the
    /// root's output each round).
    pub fn take_all(&mut self) -> Vec<Record> {
        self.consumed = 0;
        self.bytes = 0;
        std::mem::take(&mut self.recs).into_iter().collect()
    }

    /// Advances the consumed cursor by one.
    pub fn consume_one(&mut self) {
        debug_assert!(self.consumed < self.recs.len());
        self.consumed += 1;
    }

    /// Physically removes everything (drain-mode buffers after the parent
    /// consumed this round's output; Algorithm 1, step 7).
    pub fn clear(&mut self) {
        self.recs.clear();
        self.consumed = 0;
        self.bytes = 0;
    }

    /// Resets the consumed cursor to the front (adaptive plan switch: leaf
    /// history becomes replayable by the new plan).
    pub fn rewind(&mut self) {
        self.consumed = 0;
    }

    /// Removes records with `start_ts < eat` — they can no longer
    /// participate in any in-window match (§4.3). Returns the number
    /// removed. The consumed cursor is adjusted so it keeps pointing at the
    /// same logical record.
    pub fn prune(&mut self, eat: Ts) -> usize {
        if eat == 0 || self.recs.is_empty() {
            return 0;
        }
        // Fast path: records also sorted by start (true for leaf buffers
        // where start == end): pop from the front.
        let mut removed_front = 0;
        while let Some(front) = self.recs.front() {
            if front.start_ts() < eat {
                self.bytes -= front.footprint();
                self.recs.pop_front();
                removed_front += 1;
            } else {
                break;
            }
        }
        self.consumed = self.consumed.saturating_sub(removed_front);
        // Slow path for interior out-of-window records (internal buffers:
        // start order is not end order). Scan only if any survivor violates.
        // One in-place compaction sweep: survivors swap down to a write
        // cursor while `bytes` and `consumed` update in the same pass — no
        // reallocation, no second traversal.
        if self.recs.iter().any(|r| r.start_ts() < eat) {
            let consumed = self.consumed;
            let mut new_consumed = consumed;
            let mut write = 0usize;
            for read in 0..self.recs.len() {
                if self.recs[read].start_ts() < eat {
                    self.bytes -= self.recs[read].footprint();
                    if read < consumed {
                        new_consumed -= 1;
                    }
                } else {
                    if write != read {
                        self.recs.swap(write, read);
                    }
                    write += 1;
                }
            }
            removed_front += self.recs.len() - write;
            self.recs.truncate(write);
            self.consumed = new_consumed;
        }
        removed_front
    }

    /// Binary search: the number of records with `end_ts < bound` — the
    /// prefix a SEQ operator may combine with a right record starting at
    /// `bound` (records are sorted by end).
    pub fn prefix_end_before(&self, bound: Ts) -> usize {
        self.recs.partition_point(|r| r.end_ts() < bound)
    }

    /// Binary search: index of the first record with `end_ts >= bound`.
    pub fn first_end_at_or_after(&self, bound: Ts) -> usize {
        self.recs.partition_point(|r| r.end_ts() < bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstream_events::{stock, Slot};

    fn rec(ts: Ts) -> Record {
        Record::primitive(stock(ts, ts as i64, "IBM", 1.0, 1))
    }

    fn span_rec(start: Ts, end: Ts) -> Record {
        Record::from_slots(vec![
            Slot::One(stock(start, 0, "A", 1.0, 1)),
            Slot::One(stock(end, 1, "B", 1.0, 1)),
        ])
    }

    #[test]
    fn cursor_tracks_consumption() {
        let mut b = Buffer::new();
        for t in [1, 2, 3] {
            b.push(rec(t));
        }
        assert_eq!(b.unconsumed_len(), 3);
        assert_eq!(b.earliest_unconsumed_end(), Some(1));
        b.consume_all();
        assert_eq!(b.unconsumed_len(), 0);
        b.push(rec(4));
        assert_eq!(b.unconsumed_len(), 1);
        assert_eq!(b.earliest_unconsumed_end(), Some(4));
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn prune_pops_leaf_prefix_and_fixes_cursor() {
        let mut b = Buffer::new();
        for t in [1, 2, 3, 4, 5] {
            b.push(rec(t));
        }
        b.consume_all();
        b.push(rec(6));
        assert_eq!(b.prune(4), 3); // removes ts 1,2,3
        assert_eq!(b.len(), 3);
        assert_eq!(b.consumed(), 2); // ts 4,5 still consumed
        assert_eq!(b.earliest_unconsumed_end(), Some(6));
    }

    #[test]
    fn prune_removes_interior_records_by_start() {
        let mut b = Buffer::new();
        // Sorted by end: (1,10), (9,11) — the first has the smaller start.
        b.push(span_rec(1, 10));
        b.push(span_rec(9, 11));
        assert_eq!(b.prune(5), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(0).start_ts(), 9);
    }

    #[test]
    fn prune_interior_fixes_cursor() {
        let mut b = Buffer::new();
        b.push(span_rec(1, 10)); // will be pruned
        b.push(span_rec(9, 11)); // kept
        b.consume_all();
        b.push(span_rec(2, 12)); // will be pruned (start 2 < 5), unconsumed
        b.push(span_rec(9, 13)); // kept, unconsumed
        assert_eq!(b.prune(5), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.consumed(), 1);
        assert_eq!(b.earliest_unconsumed_end(), Some(13));
    }

    #[test]
    fn bytes_accounting_follows_pushes_and_prunes() {
        let mut b = Buffer::new();
        b.push(rec(1));
        b.push(rec(2));
        let full = b.bytes();
        assert!(full > 0);
        b.prune(2);
        assert!(b.bytes() < full);
        b.clear();
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn prefix_search_by_end() {
        let mut b = Buffer::new();
        for t in [1, 3, 5, 7] {
            b.push(rec(t));
        }
        assert_eq!(b.prefix_end_before(5), 2); // ts 1, 3
        assert_eq!(b.prefix_end_before(8), 4);
        assert_eq!(b.prefix_end_before(1), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted by end-ts")]
    fn push_rejects_end_order_violation() {
        let mut b = Buffer::new();
        b.push(rec(5));
        b.push(rec(3));
    }
}
