//! Brute-force reference matcher (test oracle).
//!
//! Enumerates *every* valid match of a pattern over a finite event vector by
//! exhaustive combination — exponential, but run only on small test streams.
//! The property-based test suite compares the engine's output (under every
//! plan shape, hash on/off, every batch size, and after adaptive plan
//! switches) and the NFA baseline against this oracle.
//!
//! Matches are compared through canonical **signatures**: for each pattern
//! class, the identities (`Arc` pointers) of the events bound to it, with
//! negated and unbound classes empty.

use zstream_events::{EventRef, Ts};
use zstream_lang::{
    AnalyzedQuery, ClassId, EvalError, EventBinding, KleeneKind, TypedExpr, TypedPattern,
};

/// A match signature: per class, the `Arc` pointer identities of its bound
/// events (empty for unbound/negated classes).
pub type Signature = Vec<Vec<usize>>;

/// Computes the sorted, deduplicated signatures of all matches of `aq` over
/// `events` (time-ordered), with `intake` single-class predicates applied
/// per class.
pub fn reference_signatures(
    aq: &AnalyzedQuery,
    intake: &[Vec<TypedExpr>],
    events: &[EventRef],
) -> Vec<Signature> {
    let matcher = Matcher::new(aq, intake, events);
    let mut sigs: Vec<Signature> = matcher.all_matches().iter().map(|m| m.signature()).collect();
    sigs.sort();
    sigs.dedup();
    sigs
}

/// One (partial) match: per-class bound events plus the bound span.
#[derive(Debug, Clone)]
pub struct PartialMatch {
    /// Per-class bound events. A closure class may bind several (or zero)
    /// events; other classes bind at most one.
    pub bind: Vec<Vec<EventRef>>,
    span: Option<(Ts, Ts)>,
}

impl PartialMatch {
    fn empty(n: usize) -> PartialMatch {
        PartialMatch { bind: vec![Vec::new(); n], span: None }
    }

    fn is_empty(&self) -> bool {
        self.span.is_none()
    }

    fn start(&self) -> Ts {
        self.span.expect("non-empty").0
    }

    fn end(&self) -> Ts {
        self.span.expect("non-empty").1
    }

    fn with_event(&self, class: ClassId, e: &EventRef) -> PartialMatch {
        let mut pm = self.clone();
        pm.bind[class].push(e.clone());
        let ts = e.ts();
        pm.span = Some(match pm.span {
            None => (ts, ts),
            Some((s, t)) => (s.min(ts), t.max(ts)),
        });
        pm
    }

    fn with_group(&self, class: ClassId, group: &[EventRef]) -> PartialMatch {
        let mut pm = self.clone();
        pm.bind[class] = group.to_vec();
        if let (Some(first), Some(last)) = (group.first(), group.last()) {
            let (s, t) = pm.span.unwrap_or((first.ts(), last.ts()));
            pm.span = Some((s.min(first.ts()), t.max(last.ts())));
        }
        pm
    }

    fn merge(&self, other: &PartialMatch) -> PartialMatch {
        let mut pm = self.clone();
        for (c, evs) in other.bind.iter().enumerate() {
            if !evs.is_empty() {
                debug_assert!(pm.bind[c].is_empty(), "class {c} bound twice");
                pm.bind[c] = evs.clone();
            }
        }
        pm.span = match (pm.span, other.span) {
            (None, s) | (s, None) => s,
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
        };
        pm
    }

    /// Canonical signature for comparison with engine output.
    pub fn signature(&self) -> Signature {
        self.bind.iter().map(|evs| evs.iter().map(|e| e.identity() as usize).collect()).collect()
    }
}

/// Binding over a full/partial match: closure classes expose groups, other
/// classes their single event.
struct MatchBinding<'a> {
    pm: &'a PartialMatch,
    kleene: &'a [bool],
}

impl EventBinding for MatchBinding<'_> {
    fn event(&self, class: ClassId) -> Option<&EventRef> {
        if self.kleene.get(class).copied().unwrap_or(false) {
            return None;
        }
        match self.pm.bind[class].as_slice() {
            [e] => Some(e),
            _ => None,
        }
    }

    fn closure(&self, class: ClassId) -> &[EventRef] {
        &self.pm.bind[class]
    }
}

struct OverrideBinding<'a, B> {
    base: B,
    class: ClassId,
    event: &'a EventRef,
}

impl<B: EventBinding> EventBinding for OverrideBinding<'_, B> {
    fn event(&self, class: ClassId) -> Option<&EventRef> {
        if class == self.class {
            Some(self.event)
        } else {
            self.base.event(class)
        }
    }

    fn closure(&self, class: ClassId) -> &[EventRef] {
        if class == self.class {
            std::slice::from_ref(self.event)
        } else {
            self.base.closure(class)
        }
    }
}

struct Matcher<'a> {
    aq: &'a AnalyzedQuery,
    /// Per-class admitted events, time order.
    admitted: Vec<Vec<EventRef>>,
    kleene: Vec<bool>,
    neg_mask: u64,
    optional_mask: u64,
    /// Per closure class: (event-level predicate indexes, anchor mask).
    event_pred_idx: Vec<usize>,
}

impl<'a> Matcher<'a> {
    fn new(aq: &'a AnalyzedQuery, intake: &[Vec<TypedExpr>], events: &[EventRef]) -> Matcher<'a> {
        let n = aq.num_classes();
        let mut admitted: Vec<Vec<EventRef>> = vec![Vec::new(); n];
        for e in events {
            for c in 0..n {
                if aq.classes[c].schema.name() != e.schema().name() {
                    continue;
                }
                struct One<'x>(ClassId, &'x EventRef);
                impl EventBinding for One<'_> {
                    fn event(&self, c: ClassId) -> Option<&EventRef> {
                        (c == self.0).then_some(self.1)
                    }
                    fn closure(&self, c: ClassId) -> &[EventRef] {
                        if c == self.0 {
                            std::slice::from_ref(self.1)
                        } else {
                            &[]
                        }
                    }
                }
                let b = One(c, e);
                if intake[c]
                    .iter()
                    .all(|p| matches!(p.eval(&b), Ok(zstream_events::Value::Bool(true))))
                {
                    admitted[c].push(e.clone());
                }
            }
        }
        let kleene: Vec<bool> = aq.classes.iter().map(|ci| ci.kleene.is_some()).collect();
        let neg_mask = aq
            .classes
            .iter()
            .enumerate()
            .filter(|(_, ci)| ci.negated)
            .fold(0u64, |m, (c, _)| m | (1 << c));
        let optional_mask = crate::physical::plan::optional_mask(&aq.pattern, false);
        // Event-level predicates: reference the closure class, no aggregate,
        // and span only the closure and its pattern-adjacent anchors —
        // mirrors the engine's KSEQ event_preds split.
        let anchor_masks = closure_anchor_masks(aq);
        let event_pred_idx: Vec<usize> = aq
            .multi_preds
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                (0..n).any(|c| {
                    kleene[c]
                        && p.mask & (1u64 << c) != 0
                        && !has_agg(&p.expr)
                        && p.mask & !anchor_masks[c] == 0
                })
            })
            .map(|(i, _)| i)
            .collect();
        Matcher { aq, admitted, kleene, neg_mask, optional_mask, event_pred_idx }
    }

    fn all_matches(&self) -> Vec<PartialMatch> {
        let candidates = self.enumerate(&self.aq.pattern);
        candidates
            .into_iter()
            .filter(|pm| !pm.is_empty())
            .filter(|pm| pm.end() - pm.start() <= self.aq.window)
            .filter(|pm| self.final_preds_pass(pm))
            .collect()
    }

    fn final_preds_pass(&self, pm: &PartialMatch) -> bool {
        let binding = MatchBinding { pm, kleene: &self.kleene };
        self.aq.multi_preds.iter().enumerate().all(|(i, p)| {
            if self.event_pred_idx.contains(&i) || p.mask & self.neg_mask != 0 {
                return true; // applied during grouping / negation checks
            }
            self.pred(&p.expr, &binding, self.optional_mask)
        })
    }

    fn pred(&self, expr: &TypedExpr, binding: &impl EventBinding, optional: u64) -> bool {
        match expr.eval(binding) {
            Ok(zstream_events::Value::Bool(b)) => b,
            Err(EvalError::Unbound(c)) => optional & (1u64 << c) != 0,
            _ => false,
        }
    }

    fn enumerate(&self, p: &TypedPattern) -> Vec<PartialMatch> {
        let n = self.aq.num_classes();
        match p {
            TypedPattern::Class(c) => {
                self.admitted[*c].iter().map(|e| PartialMatch::empty(n).with_event(*c, e)).collect()
            }
            TypedPattern::Seq(xs) => self.enumerate_seq(xs),
            TypedPattern::Kleene(_, _) => self.enumerate_seq(std::slice::from_ref(p)),
            TypedPattern::Conj(xs) => {
                let mut acc = vec![PartialMatch::empty(n)];
                for x in xs {
                    let rights = self.enumerate(x);
                    let mut next = Vec::new();
                    for l in &acc {
                        for r in &rights {
                            next.push(l.merge(r));
                        }
                    }
                    acc = next;
                }
                acc
            }
            TypedPattern::Disj(xs) => xs.iter().flat_map(|x| self.enumerate(x)).collect(),
            TypedPattern::Neg(_) => vec![],
        }
    }

    fn enumerate_seq(&self, elems: &[TypedPattern]) -> Vec<PartialMatch> {
        let n = self.aq.num_classes();
        let mut acc = vec![PartialMatch::empty(n)];
        let mut pending_neg: Vec<ClassId> = Vec::new();
        let mut pending_closure: Option<(ClassId, KleeneKind)> = None;

        for elem in elems {
            match elem {
                TypedPattern::Neg(inner) => {
                    collect_classes(inner, &mut pending_neg);
                }
                TypedPattern::Kleene(c, k) => {
                    assert!(pending_neg.is_empty(), "negation adjacent to closure is unsupported");
                    pending_closure = Some((*c, *k));
                }
                pos => {
                    let rights = self.enumerate(pos);
                    let mut next = Vec::new();
                    for l in &acc {
                        for r in &rights {
                            if !l.is_empty() && l.end() >= r.start() {
                                continue;
                            }
                            let variants: Vec<PartialMatch> = match pending_closure {
                                Some((c, k)) => self.expand_closure(l, r, c, k),
                                None => vec![l.merge(r)],
                            };
                            for m in variants {
                                if !pending_neg.is_empty()
                                    && !l.is_empty()
                                    && self.negated_between(l.end(), r.start(), &pending_neg, &m)
                                {
                                    continue;
                                }
                                next.push(m);
                            }
                        }
                    }
                    acc = next;
                    pending_neg.clear();
                    pending_closure = None;
                }
            }
        }
        // Trailing counted closure (`A; B^cc`).
        if let Some((c, KleeneKind::Count(cc))) = pending_closure {
            let mut next = Vec::new();
            for l in &acc {
                let lo = if l.is_empty() { 0 } else { l.end() + 1 };
                let qualifying = self.qualifying(c, lo, Ts::MAX, l, None);
                let cc = cc as usize;
                if qualifying.len() >= cc {
                    for w in 0..=qualifying.len() - cc {
                        next.push(l.with_group(c, &qualifying[w..w + cc]));
                    }
                }
            }
            acc = next;
        } else {
            assert!(pending_closure.is_none(), "unbounded trailing closure unsupported");
        }
        acc
    }

    /// Events of closure class `c` with `lo <= ts < hi` passing event-level
    /// predicates against the merged anchors.
    fn qualifying(
        &self,
        c: ClassId,
        lo: Ts,
        hi: Ts,
        left: &PartialMatch,
        right: Option<&PartialMatch>,
    ) -> Vec<EventRef> {
        let merged = right.map(|r| left.merge(r));
        let anchors = merged.as_ref().unwrap_or(left);
        self.admitted[c]
            .iter()
            .filter(|e| e.ts() >= lo && e.ts() < hi)
            .filter(|e| {
                let base = MatchBinding { pm: anchors, kleene: &self.kleene };
                let b = OverrideBinding { base, class: c, event: e };
                self.event_pred_idx
                    .iter()
                    .filter(|i| self.aq.multi_preds[**i].mask & (1u64 << c) != 0)
                    .all(|i| self.pred(&self.aq.multi_preds[*i].expr, &b, self.optional_mask))
            })
            .cloned()
            .collect()
    }

    fn expand_closure(
        &self,
        l: &PartialMatch,
        r: &PartialMatch,
        c: ClassId,
        k: KleeneKind,
    ) -> Vec<PartialMatch> {
        let lo_anchor = if l.is_empty() { 0 } else { l.end() + 1 };
        // Mirror the engine: closure events must fit in the window ending at
        // the end anchor (defines the maximal group of unanchored closures).
        let lo = lo_anchor.max(r.end().saturating_sub(self.aq.window));
        let hi = r.start();
        let qualifying = self.qualifying(c, lo, hi, l, Some(r));
        let base = l.merge(r);
        match k {
            KleeneKind::Star => vec![base.with_group(c, &qualifying)],
            KleeneKind::Plus => {
                if qualifying.is_empty() {
                    vec![]
                } else {
                    vec![base.with_group(c, &qualifying)]
                }
            }
            KleeneKind::Count(cc) => {
                let cc = cc as usize;
                if qualifying.len() < cc {
                    vec![]
                } else {
                    (0..=qualifying.len() - cc)
                        .map(|w| base.with_group(c, &qualifying[w..w + cc]))
                        .collect()
                }
            }
        }
    }

    /// True when some admitted negation event strictly between `lo` and
    /// `hi` qualifies against `pm` — invalidating the candidate match.
    fn negated_between(&self, lo: Ts, hi: Ts, negs: &[ClassId], pm: &PartialMatch) -> bool {
        negs.iter().any(|nc| {
            self.admitted[*nc].iter().any(|b| {
                if !(b.ts() > lo && b.ts() < hi) {
                    return false;
                }
                let base = MatchBinding { pm, kleene: &self.kleene };
                let binding = OverrideBinding { base, class: *nc, event: b };
                let optional = self.optional_mask | (self.neg_mask & !(1u64 << nc));
                self.aq
                    .multi_preds
                    .iter()
                    .filter(|p| p.mask & (1u64 << nc) != 0)
                    .all(|p| self.pred(&p.expr, &binding, optional))
            })
        })
    }
}

fn collect_classes(p: &TypedPattern, out: &mut Vec<ClassId>) {
    match p {
        TypedPattern::Class(c) | TypedPattern::Kleene(c, _) => out.push(*c),
        TypedPattern::Seq(xs) | TypedPattern::Conj(xs) | TypedPattern::Disj(xs) => {
            for x in xs {
                collect_classes(x, out);
            }
        }
        TypedPattern::Neg(x) => collect_classes(x, out),
    }
}

fn has_agg(e: &TypedExpr) -> bool {
    match e {
        TypedExpr::Agg { .. } => true,
        TypedExpr::Attr { .. } | TypedExpr::Lit(_) => false,
        TypedExpr::Unary(_, x) => has_agg(x),
        TypedExpr::Binary(_, l, r) => has_agg(l) || has_agg(r),
    }
}

/// Per closure class: the mask of classes its event-level predicates may
/// reference (the closure itself plus its pattern-adjacent anchors).
fn closure_anchor_masks(aq: &AnalyzedQuery) -> Vec<u64> {
    let n = aq.num_classes();
    let mut masks = vec![0u64; n];
    let order: Vec<ClassId> = aq.pattern.class_ids();
    for (i, c) in order.iter().enumerate() {
        if aq.classes[*c].kleene.is_some() {
            let mut m = 1u64 << c;
            if i > 0 {
                m |= 1u64 << order[i - 1];
            }
            if i + 1 < order.len() {
                m |= 1u64 << order[i + 1];
            }
            masks[*c] = m;
        }
    }
    masks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_intake;
    use zstream_events::{stock, Schema};
    use zstream_lang::{analyze, Query, SchemaMap};

    fn aq(src: &str) -> AnalyzedQuery {
        analyze(&Query::parse(src).unwrap(), &SchemaMap::uniform(Schema::stocks())).unwrap()
    }

    fn sigs(aq: &AnalyzedQuery, events: &[EventRef]) -> Vec<Signature> {
        let intake = build_intake(aq, Some("name")).unwrap();
        reference_signatures(aq, &intake, events)
    }

    #[test]
    fn simple_sequence_counts() {
        let q = aq("PATTERN IBM; Sun WITHIN 100");
        let events = vec![
            stock(1, 0, "IBM", 1.0, 1),
            stock(2, 1, "Sun", 1.0, 1),
            stock(3, 2, "IBM", 1.0, 1),
            stock(4, 3, "Sun", 1.0, 1),
        ];
        // (1,2), (1,4), (3,4).
        assert_eq!(sigs(&q, &events).len(), 3);
    }

    #[test]
    fn window_excludes_long_spans() {
        let q = aq("PATTERN IBM; Sun WITHIN 5");
        let events = vec![stock(1, 0, "IBM", 1.0, 1), stock(10, 1, "Sun", 1.0, 1)];
        assert!(sigs(&q, &events).is_empty());
    }

    #[test]
    fn negation_blocks_interleaved() {
        let q = aq("PATTERN IBM; !Sun; Oracle WITHIN 100");
        let events = vec![
            stock(1, 0, "IBM", 1.0, 1),
            stock(2, 1, "Sun", 1.0, 1),
            stock(3, 2, "Oracle", 1.0, 1),
            stock(4, 3, "IBM", 1.0, 1),
            stock(5, 4, "Oracle", 1.0, 1),
        ];
        // (1,3) negated by Sun@2; (1,5) negated; (4,5) clean; (4,3) invalid order.
        let s = sigs(&q, &events);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn negation_with_predicate_only_blocks_qualifying() {
        // Sun only negates when its price is below 10.
        let q = aq("PATTERN IBM; !Sun; Oracle WHERE Sun.price < 10 WITHIN 100");
        let events = vec![
            stock(1, 0, "IBM", 1.0, 1),
            stock(2, 1, "Sun", 50.0, 1), // does not qualify
            stock(3, 2, "Oracle", 1.0, 1),
        ];
        assert_eq!(sigs(&q, &events).len(), 1);
    }

    #[test]
    fn conjunction_is_order_free() {
        let q = aq("PATTERN IBM & Sun WITHIN 100");
        let events = vec![stock(1, 0, "Sun", 1.0, 1), stock(2, 1, "IBM", 1.0, 1)];
        assert_eq!(sigs(&q, &events).len(), 1);
    }

    #[test]
    fn disjunction_unions() {
        let q = aq("PATTERN IBM | Sun WITHIN 100");
        let events = vec![
            stock(1, 0, "Sun", 1.0, 1),
            stock(2, 1, "IBM", 1.0, 1),
            stock(3, 2, "Oracle", 1.0, 1),
        ];
        assert_eq!(sigs(&q, &events).len(), 2);
    }

    #[test]
    fn counted_closure_windows() {
        let q = aq("PATTERN IBM; Sun^2; Oracle WITHIN 100");
        let events = vec![
            stock(1, 0, "IBM", 1.0, 1),
            stock(2, 1, "Sun", 1.0, 1),
            stock(3, 2, "Sun", 1.0, 1),
            stock(4, 3, "Sun", 1.0, 1),
            stock(5, 4, "Oracle", 1.0, 1),
        ];
        // Groups (2,3) and (3,4) — Figure 6 of the paper.
        assert_eq!(sigs(&q, &events).len(), 2);
    }

    #[test]
    fn star_closure_allows_empty_group() {
        let q = aq("PATTERN IBM; Sun*; Oracle WITHIN 100");
        let events = vec![stock(1, 0, "IBM", 1.0, 1), stock(2, 1, "Oracle", 1.0, 1)];
        assert_eq!(sigs(&q, &events).len(), 1);
        let q = aq("PATTERN IBM; Sun+; Oracle WITHIN 100");
        assert!(sigs(&q, &events).is_empty());
    }

    #[test]
    fn kleene_aggregate_filters_groups() {
        let q = aq("PATTERN IBM; Sun^2; Oracle WHERE sum(Sun.volume) > 25 WITHIN 100");
        let events = vec![
            stock(1, 0, "IBM", 1.0, 1),
            stock(2, 1, "Sun", 1.0, 10),
            stock(3, 2, "Sun", 1.0, 10),
            stock(4, 3, "Sun", 1.0, 20),
            stock(5, 4, "Oracle", 1.0, 1),
        ];
        // Groups: (10,10)=20 fails; (10,20)=30 passes.
        assert_eq!(sigs(&q, &events).len(), 1);
    }
}
