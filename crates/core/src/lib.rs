//! ZStream core: the paper's primary contribution.
//!
//! * [`cost`] — the statistics (Table 1), per-operator cost formulas
//!   (Table 2), and the dynamic-programming optimal-plan search of §5.2.3
//!   (Algorithm 5, including bushy plans),
//! * [`logical`] — rule-based pattern transformations (§5.2.1),
//! * [`physical`] — tree plans with leaf/internal buffers (§4.1–4.2) and the
//!   operator algorithms of §4.4: SEQ, NSEQ, CONJ, DISJ, KSEQ and the
//!   negation-on-top filter,
//! * [`engine`] — the batch-iterator evaluation model of §4.3 (idle and
//!   assembly rounds, EAT push-down),
//! * [`intake`] — compiled intake predicates (§4.1 push-down over columns)
//!   and the cross-query [`SharedPredIndex`] that evaluates each distinct
//!   column predicate once per batch for a whole registry of queries,
//! * [`adaptive`] — runtime statistics sampling and on-the-fly plan
//!   switching (§5.3),
//! * [`metrics`] — throughput and the logical peak-memory accounting used to
//!   reproduce Tables 3 and 5,
//! * [`mod@reference`] — a brute-force oracle matcher used by the test suite to
//!   validate every plan shape and the NFA baseline.

pub mod adaptive;
pub mod builder;
pub mod cost;
pub mod engine;
pub mod error;
pub mod intake;
pub mod logical;
pub mod metrics;
pub mod obs;
pub mod partition;
pub mod physical;
pub mod reference;

pub use adaptive::{AdaptiveConfig, AdaptiveEngine};
pub use builder::{build_intake, CompiledParts, CompiledQuery, EngineBuilder, EngineConfig};
pub use cost::dp::{plan_cost, search_optimal, spec_with_shape, NegStrategy, PlanSpec};
pub use cost::model::{CostModel, OperatorCost};
pub use cost::shape::PlanShape;
pub use cost::stats::Statistics;
pub use engine::Engine;
pub use error::CoreError;
pub use intake::{IntakeMode, SharedPredIndex};
pub use metrics::EngineMetrics;
pub use obs::EngineObs;
pub use partition::{can_partition_by, PartitionedEngine};
pub use physical::{PhysicalPlan, PlanConfig};
pub use reference::{reference_signatures, Signature};
