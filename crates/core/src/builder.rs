//! High-level query compilation: text → AST → rewrites → analysis → plan →
//! engine.

use std::sync::Arc;

use zstream_events::{Schema, Value};
use zstream_lang::{analyze, AnalyzedQuery, BinOp, Query, SchemaMap, TypedExpr};

use crate::cost::dp::{search_optimal, spec_with_shape, NegStrategy, PlanSpec};
use crate::cost::shape::PlanShape;
use crate::cost::stats::Statistics;
use crate::engine::Engine;
use crate::error::CoreError;
use crate::logical::rewrite_query;
use crate::partition::PartitionedEngine;
use crate::physical::plan::{PhysicalPlan, PlanConfig};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Events per batch for the batch-iterator model (§4.3).
    pub batch_size: usize,
    /// Physical plan toggles (hashing, EAT pruning).
    pub plan: PlanConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { batch_size: 128, plan: PlanConfig::default() }
    }
}

/// A compiled query: rewritten, analyzed, and (for flat sequential patterns)
/// planned.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The analyzed query.
    pub aq: Arc<AnalyzedQuery>,
    /// Statistics the plan was chosen under.
    pub stats: Statistics,
    /// The plan specification (`None` for syntax-directed conj/disj plans).
    pub spec: Option<PlanSpec>,
    /// Number of §5.2.1 rewrites applied.
    pub rewrites: usize,
}

impl CompiledQuery {
    /// Compiles a query with the optimizer choosing the plan.
    pub fn optimize(
        query: &Query,
        schemas: &SchemaMap,
        stats: Option<Statistics>,
    ) -> Result<CompiledQuery, CoreError> {
        Self::compile_inner(query, schemas, stats, None, NegStrategy::PushdownPreferred)
    }

    /// Compiles with a forced shape (the paper's fixed left-deep/right-deep/
    /// bushy/inner comparison plans) and negation strategy.
    pub fn with_shape(
        query: &Query,
        schemas: &SchemaMap,
        stats: Option<Statistics>,
        shape: PlanShape,
        neg: NegStrategy,
    ) -> Result<CompiledQuery, CoreError> {
        Self::compile_inner(query, schemas, stats, Some(shape), neg)
    }

    fn compile_inner(
        query: &Query,
        schemas: &SchemaMap,
        stats: Option<Statistics>,
        shape: Option<PlanShape>,
        neg: NegStrategy,
    ) -> Result<CompiledQuery, CoreError> {
        let (rewritten, rewrites) = rewrite_query(query);
        let aq = Arc::new(analyze(&rewritten, schemas)?);
        let stats = stats.unwrap_or_else(|| {
            Statistics::uniform(aq.num_classes(), aq.multi_preds.len(), aq.window)
        });
        stats.validate(aq.num_classes(), aq.multi_preds.len())?;
        let spec = if aq.is_flat_sequence() {
            Some(match shape {
                Some(sh) => spec_with_shape(&aq, &stats, sh, neg)?,
                None => search_optimal(&aq, &stats)?,
            })
        } else {
            if shape.is_some() {
                return Err(CoreError::UnsupportedPattern(
                    "forced shapes apply to flat sequential patterns only".into(),
                ));
            }
            None
        };
        Ok(CompiledQuery { aq, stats, spec, rewrites })
    }

    /// Builds the physical plan.
    pub fn physical_plan(&self, config: PlanConfig) -> Result<PhysicalPlan, CoreError> {
        match &self.spec {
            Some(spec) => PhysicalPlan::from_spec(&self.aq, spec, config),
            None => PhysicalPlan::from_pattern(&self.aq, config),
        }
    }
}

/// Fluent construction of an [`Engine`] from a query.
#[derive(Debug)]
pub struct EngineBuilder {
    query: Query,
    schemas: SchemaMap,
    stats: Option<Statistics>,
    shape: Option<PlanShape>,
    neg: NegStrategy,
    route_field: Option<String>,
    config: EngineConfig,
}

impl EngineBuilder {
    /// Starts from a parsed query. Classes default to the stock schema.
    pub fn new(query: Query) -> EngineBuilder {
        EngineBuilder {
            query,
            schemas: SchemaMap::uniform(Schema::stocks()),
            stats: None,
            shape: None,
            neg: NegStrategy::PushdownPreferred,
            route_field: None,
            config: EngineConfig::default(),
        }
    }

    /// Parses and starts from query text.
    pub fn parse(src: &str) -> Result<EngineBuilder, CoreError> {
        Ok(EngineBuilder::new(Query::parse(src)?))
    }

    /// Sets the class-to-schema bindings.
    pub fn schemas(mut self, schemas: SchemaMap) -> Self {
        self.schemas = schemas;
        self
    }

    /// Stock-market convention used throughout the paper's experiments:
    /// every class reads the stock stream, and a pattern class named `IBM`
    /// means `name = 'IBM'` (an implicit single-class predicate pushed to
    /// the leaf).
    pub fn stock_routing(mut self) -> Self {
        self.schemas = SchemaMap::uniform(Schema::stocks());
        self.route_field = Some("name".to_string());
        self
    }

    /// Adds an implicit `class.field = '<class name>'` intake predicate for
    /// every class.
    pub fn route_by_field(mut self, field: impl Into<String>) -> Self {
        self.route_field = Some(field.into());
        self
    }

    /// Declares input statistics for the optimizer.
    pub fn statistics(mut self, stats: Statistics) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Forces a physical tree shape instead of running the optimizer.
    pub fn shape(mut self, shape: PlanShape) -> Self {
        self.shape = Some(shape);
        self
    }

    /// Chooses the negation strategy.
    pub fn neg_strategy(mut self, neg: NegStrategy) -> Self {
        self.neg = neg;
        self
    }

    /// Sets engine configuration (batch size, hashing, pruning).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Compiles and builds the engine.
    pub fn build(self) -> Result<Engine, CoreError> {
        self.compile()?.engine()
    }

    /// Compiles without instantiating an engine: the seam used by execution
    /// runtimes that build one engine (or [`PartitionedEngine`]) per shard
    /// from a single compiled template.
    pub fn compile(self) -> Result<CompiledParts, CoreError> {
        let compiled = match self.shape {
            Some(sh) => {
                CompiledQuery::with_shape(&self.query, &self.schemas, self.stats, sh, self.neg)?
            }
            None => CompiledQuery::optimize(&self.query, &self.schemas, self.stats)?,
        };
        let intake = build_intake(&compiled.aq, self.route_field.as_deref())?;
        Ok(CompiledParts { compiled, intake, config: self.config })
    }
}

/// The compiled artifacts an execution runtime needs to instantiate engines:
/// the optimized query, the per-class intake predicates, and the engine
/// configuration. Cloneable, so one compilation can fan out to many shards,
/// each instantiating its own engine over the shared plan template.
#[derive(Debug, Clone)]
pub struct CompiledParts {
    /// The rewritten, analyzed, planned query.
    pub compiled: CompiledQuery,
    /// Per-class intake predicates (single-class predicates plus any
    /// route-by-field equality).
    pub intake: Vec<Vec<TypedExpr>>,
    /// Batch size and physical plan toggles.
    pub config: EngineConfig,
}

impl CompiledParts {
    /// The analyzed query.
    pub fn analyzed(&self) -> &Arc<AnalyzedQuery> {
        &self.compiled.aq
    }

    /// Instantiates a fresh single-threaded engine.
    pub fn engine(&self) -> Result<Engine, CoreError> {
        let plan = self.compiled.physical_plan(self.config.plan.clone())?;
        Ok(Engine::new(self.compiled.aq.clone(), plan, self.intake.clone(), self.config.batch_size))
    }

    /// Instantiates a fresh [`PartitionedEngine`] keyed on `field`. Fails
    /// when partitioning on `field` is unsound for this query (see
    /// [`crate::partition::can_partition_by`]).
    pub fn partitioned_engine(&self, field: &str) -> Result<PartitionedEngine, CoreError> {
        PartitionedEngine::new(
            self.compiled.clone(),
            self.config.plan.clone(),
            self.intake.clone(),
            self.config.batch_size,
            field,
        )
    }

    /// Instantiates an engine restored from a snapshot stream, the
    /// checkpoint-recovery twin of [`CompiledParts::engine`]. This
    /// compilation must match the one the snapshotted engine ran.
    pub fn restore_engine(
        &self,
        r: &mut zstream_events::SnapshotReader<'_>,
    ) -> Result<Engine, zstream_events::SnapshotError> {
        let plan = self.compiled.physical_plan(self.config.plan.clone()).map_err(|e| {
            zstream_events::SnapshotError::Corrupt(format!("plan rebuild failed: {e}"))
        })?;
        Engine::restore_snapshot(
            self.compiled.aq.clone(),
            plan,
            self.intake.clone(),
            self.config.batch_size,
            r,
        )
    }

    /// Instantiates a partitioned engine restored from a snapshot stream,
    /// the checkpoint-recovery twin of [`CompiledParts::partitioned_engine`].
    pub fn restore_partitioned_engine(
        &self,
        field: &str,
        r: &mut zstream_events::SnapshotReader<'_>,
    ) -> Result<PartitionedEngine, zstream_events::SnapshotError> {
        PartitionedEngine::restore_snapshot(
            self.compiled.clone(),
            self.config.plan.clone(),
            self.intake.clone(),
            self.config.batch_size,
            field,
            r,
        )
    }
}

/// Per-class intake predicates: analyzed single-class predicates plus the
/// optional route-by-field equality.
pub fn build_intake(
    aq: &AnalyzedQuery,
    route_field: Option<&str>,
) -> Result<Vec<Vec<TypedExpr>>, CoreError> {
    let mut intake: Vec<Vec<TypedExpr>> = aq.single_preds.clone();
    if let Some(field) = route_field {
        for (c, info) in aq.classes.iter().enumerate() {
            let fi = info.schema.field_index(field).map_err(zstream_lang::LangError::from)?;
            let ty = info.schema.fields()[fi].ty;
            intake[c].push(TypedExpr::Binary(
                BinOp::Eq,
                Box::new(TypedExpr::Attr { class: c, field: fi, ty }),
                Box::new(TypedExpr::Lit(Value::str(&info.name))),
            ));
        }
    }
    Ok(intake)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstream_events::stock;

    #[test]
    fn quickstart_sequence_end_to_end() {
        let mut engine = EngineBuilder::parse("PATTERN IBM; Sun; Oracle WITHIN 200")
            .unwrap()
            .stock_routing()
            .config(EngineConfig { batch_size: 1, ..Default::default() })
            .build()
            .unwrap();
        let mut matches = Vec::new();
        for (i, name) in ["IBM", "Sun", "Oracle", "IBM", "Oracle"].iter().enumerate() {
            let out = engine.push(stock(i as u64 + 1, i as i64, name, 10.0, 1));
            matches.extend(out);
        }
        // IBM@1;Sun@2;Oracle@3 and IBM@1;Sun@2;Oracle@5.
        assert_eq!(matches.len(), 2);
        assert_eq!(engine.metrics().matches_out, 2);
        assert_eq!(engine.metrics().events_in, 5);
    }

    #[test]
    fn where_predicates_filter_matches() {
        let mut engine =
            EngineBuilder::parse("PATTERN IBM; Sun WHERE IBM.price > Sun.price WITHIN 100")
                .unwrap()
                .stock_routing()
                .config(EngineConfig { batch_size: 1, ..Default::default() })
                .build()
                .unwrap();
        let mut matches = Vec::new();
        matches.extend(engine.push(stock(1, 0, "IBM", 50.0, 1)));
        matches.extend(engine.push(stock(2, 1, "Sun", 80.0, 1))); // fails pred
        matches.extend(engine.push(stock(3, 2, "Sun", 20.0, 1))); // passes
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].end_ts(), 3);
    }

    #[test]
    fn window_bounds_matches() {
        let mut engine = EngineBuilder::parse("PATTERN IBM; Sun WITHIN 10")
            .unwrap()
            .stock_routing()
            .config(EngineConfig { batch_size: 1, ..Default::default() })
            .build()
            .unwrap();
        let mut matches = Vec::new();
        matches.extend(engine.push(stock(1, 0, "IBM", 1.0, 1)));
        matches.extend(engine.push(stock(100, 1, "Sun", 1.0, 1))); // out of window
        matches.extend(engine.push(stock(105, 2, "IBM", 1.0, 1)));
        matches.extend(engine.push(stock(110, 3, "Sun", 1.0, 1))); // in window
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].start_ts(), 105);
    }

    #[test]
    fn flush_forces_round() {
        let mut engine = EngineBuilder::parse("PATTERN IBM; Sun WITHIN 100")
            .unwrap()
            .stock_routing()
            .config(EngineConfig { batch_size: 1000, ..Default::default() })
            .build()
            .unwrap();
        assert!(engine.push(stock(1, 0, "IBM", 1.0, 1)).is_empty());
        assert!(engine.push(stock(2, 1, "Sun", 1.0, 1)).is_empty());
        let out = engine.flush();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn engine_snapshot_round_trips_mid_stream() {
        use zstream_events::{Snapshot, SnapshotReader, SnapshotWriter};
        let parts = EngineBuilder::parse("PATTERN IBM; Sun; Oracle WITHIN 200")
            .unwrap()
            .stock_routing()
            .config(EngineConfig { batch_size: 2, ..Default::default() })
            .compile()
            .unwrap();
        let mut engine = parts.engine().unwrap();
        let names = ["IBM", "Sun", "Oracle", "IBM", "Sun"];
        let mut head_matches = 0;
        for (i, name) in names.iter().enumerate() {
            head_matches += engine.push(stock(i as u64 + 1, i as i64, name, 10.0, 1)).len();
        }
        assert_eq!(head_matches, 1, "IBM@1;Sun@2;Oracle@3 completed pre-snapshot");

        // Snapshot mid-stream: batch_size 2 with 5 events leaves one event
        // pending, buffers partially consumed.
        let mut w = SnapshotWriter::new();
        engine.write_snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let mut restored = parts.restore_engine(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored.watermark(), engine.watermark());
        assert_eq!(restored.metrics().events_in, engine.metrics().events_in);
        assert_eq!(restored.metrics().matches_out, engine.metrics().matches_out);
        assert_eq!(restored.class_counters(), engine.class_counters());

        // The tail completes matches whose prefixes straddle the boundary;
        // both engines must emit the same matches in the same order, and
        // neither may re-emit the pre-snapshot match.
        let tail: Vec<_> = ["Oracle", "IBM", "Sun", "Oracle"]
            .iter()
            .enumerate()
            .map(|(i, name)| stock(i as u64 + 6, i as i64, name, 10.0, 1))
            .collect();
        let fmt = |e: &Engine, recs: &[zstream_events::Record]| {
            recs.iter().map(|r| e.format_match(r)).collect::<Vec<_>>()
        };
        for e in &tail {
            let a = engine.push(e.clone());
            let b = restored.push(e.clone());
            assert_eq!(fmt(&engine, &a), fmt(&restored, &b));
        }
        let (a, b) = (engine.flush(), restored.flush());
        assert_eq!(fmt(&engine, &a), fmt(&restored, &b));
        assert_eq!(restored.metrics().matches_out, engine.metrics().matches_out);
        assert!(engine.metrics().matches_out > 1, "tail produced matches");
    }

    #[test]
    fn engine_restore_rejects_wrong_query_shape() {
        use zstream_events::{Snapshot, SnapshotReader, SnapshotWriter};
        let two = EngineBuilder::parse("PATTERN IBM; Sun WITHIN 100")
            .unwrap()
            .stock_routing()
            .compile()
            .unwrap();
        let three = EngineBuilder::parse("PATTERN IBM; Sun; Oracle WITHIN 100")
            .unwrap()
            .stock_routing()
            .compile()
            .unwrap();
        let mut engine = two.engine().unwrap();
        engine.push(stock(1, 0, "IBM", 1.0, 1));
        let mut w = SnapshotWriter::new();
        engine.write_snapshot(&mut w);
        let bytes = w.into_bytes();
        assert!(
            three.restore_engine(&mut SnapshotReader::new(&bytes)).is_err(),
            "a two-class snapshot must not restore into a three-class plan"
        );
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let events: Vec<_> = (0..60)
            .map(|i| {
                let name = ["IBM", "Sun", "Oracle"][i % 3];
                stock(i as u64 + 1, i as i64, name, i as f64, 1)
            })
            .collect();
        let mut counts = Vec::new();
        for bs in [1, 7, 64] {
            let mut engine = EngineBuilder::parse("PATTERN IBM; Sun; Oracle WITHIN 30")
                .unwrap()
                .stock_routing()
                .config(EngineConfig { batch_size: bs, ..Default::default() })
                .build()
                .unwrap();
            let mut n = 0;
            for e in &events {
                n += engine.push(e.clone()).len();
            }
            n += engine.flush().len();
            counts.push(n);
        }
        assert!(counts[0] > 0);
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
    }
}
