//! Statistics used for cost estimation — Table 1 of the paper.
//!
//! | Term        | Definition                                                    |
//! |-------------|---------------------------------------------------------------|
//! | `R_E`       | rate of primitive events of class/partition E (events/time)   |
//! | `TW_p`      | time window of the pattern                                     |
//! | `P_E`       | product of single-class predicate selectivities of E          |
//! | `CARD_E`    | `R_E * TW_p * P_E` — instances of E active within the window  |
//! | `Pt_E1,E2`  | selectivity of the implicit time predicate (default 1/2)      |
//! | `P_E1,E2`   | product of multi-class predicate selectivities between E1, E2 |
//!
//! Statistics come from two sources: **declared** (benchmarks with analytic
//! selectivities) and **sampled** (windowed averages maintained by the
//! adaptive engine, §5.3).

use crate::error::CoreError;

/// Default selectivity of the implicit time predicate between two classes in
/// a sequential pattern (`E1.end-ts < E2.start-ts`); the paper sets 1/2.
pub const DEFAULT_PT: f64 = 0.5;

/// Default selectivity assumed for a multi-class predicate with no declared
/// or measured estimate.
pub const DEFAULT_PRED_SEL: f64 = 0.5;

/// Statistics about the input streams and predicates of one query.
///
/// ```
/// use zstream_core::Statistics;
/// // 3 classes, 1 multi-class predicate, window 200. Class 1 receives 4
/// // events per time unit of which half pass its single-class predicates:
/// let stats = Statistics::uniform(3, 1, 200)
///     .with_rate(1, 4.0)
///     .with_single_sel(1, 0.5)
///     .with_pred_sel(0, 0.25);
/// assert_eq!(stats.card(1), 4.0 * 200.0 * 0.5); // CARD_E of Table 1
/// ```
#[derive(Debug, Clone)]
pub struct Statistics {
    /// Per-class raw event rate `R_E` (events per logical time unit offered
    /// to the class's intake, before single-class predicates).
    rates: Vec<f64>,
    /// Per-class single-class predicate selectivity `P_E`.
    single_sel: Vec<f64>,
    /// Per-multi-class-predicate selectivity, aligned with
    /// `AnalyzedQuery::multi_preds`.
    pred_sel: Vec<f64>,
    /// Time window `TW_p`.
    window: f64,
    /// Implicit time-predicate selectivity `Pt` (uniform; default 1/2).
    pt: f64,
}

impl Statistics {
    /// Uniform defaults for `n` classes and `m` multi-class predicates:
    /// rate 1, selectivity 1 for single-class predicates, [`DEFAULT_PRED_SEL`]
    /// for multi-class predicates.
    pub fn uniform(n: usize, m: usize, window: u64) -> Statistics {
        Statistics {
            rates: vec![1.0; n],
            single_sel: vec![1.0; n],
            pred_sel: vec![DEFAULT_PRED_SEL; m],
            window: window as f64,
            pt: DEFAULT_PT,
        }
    }

    /// Sets the raw event rate of one class.
    pub fn with_rate(mut self, class: usize, rate: f64) -> Statistics {
        self.rates[class] = rate;
        self
    }

    /// Sets all class rates at once.
    pub fn with_rates(mut self, rates: &[f64]) -> Statistics {
        self.rates = rates.to_vec();
        self
    }

    /// Sets the single-class selectivity of one class.
    pub fn with_single_sel(mut self, class: usize, sel: f64) -> Statistics {
        self.single_sel[class] = sel;
        self
    }

    /// Sets the selectivity of the `i`-th multi-class predicate.
    pub fn with_pred_sel(mut self, pred: usize, sel: f64) -> Statistics {
        self.pred_sel[pred] = sel;
        self
    }

    /// Overrides the implicit time-predicate selectivity `Pt`.
    pub fn with_pt(mut self, pt: f64) -> Statistics {
        self.pt = pt;
        self
    }

    /// Validates dimensions against a query with `n` classes and `m`
    /// multi-class predicates.
    pub fn validate(&self, n: usize, m: usize) -> Result<(), CoreError> {
        if self.rates.len() != n || self.single_sel.len() != n {
            return Err(CoreError::BadStatistics(format!(
                "expected {n} class entries, got {} rates / {} selectivities",
                self.rates.len(),
                self.single_sel.len()
            )));
        }
        if self.pred_sel.len() != m {
            return Err(CoreError::BadStatistics(format!(
                "expected {m} predicate selectivities, got {}",
                self.pred_sel.len()
            )));
        }
        for (i, r) in self.rates.iter().enumerate() {
            if !r.is_finite() || *r < 0.0 {
                return Err(CoreError::BadStatistics(format!("rate of class {i} is {r}")));
            }
        }
        for (i, s) in self.single_sel.iter().chain(self.pred_sel.iter()).enumerate() {
            if !s.is_finite() || !(0.0..=1.0).contains(s) {
                return Err(CoreError::BadStatistics(format!(
                    "selectivity entry {i} is {s}, must be in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// `R_E` for one class.
    pub fn rate(&self, class: usize) -> f64 {
        self.rates[class]
    }

    /// `P_E` for one class.
    pub fn single_sel(&self, class: usize) -> f64 {
        self.single_sel[class]
    }

    /// `CARD_E = R_E * TW_p * P_E` (Table 1).
    pub fn card(&self, class: usize) -> f64 {
        self.rates[class] * self.window * self.single_sel[class]
    }

    /// The time window `TW_p`.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// `Pt` — implicit time-predicate selectivity.
    pub fn pt(&self) -> f64 {
        self.pt
    }

    /// Selectivity of the `i`-th multi-class predicate.
    pub fn pred_sel(&self, i: usize) -> f64 {
        self.pred_sel[i]
    }

    /// Number of class entries.
    pub fn num_classes(&self) -> usize {
        self.rates.len()
    }

    /// Number of multi-class predicate entries.
    pub fn num_preds(&self) -> usize {
        self.pred_sel.len()
    }

    /// Product of the selectivities of the predicates selected by
    /// `pred_indexes`.
    pub fn pred_product(&self, pred_indexes: impl Iterator<Item = usize>) -> f64 {
        pred_indexes.map(|i| self.pred_sel[i]).product()
    }

    /// Largest relative change between `self` and `other`, used by the
    /// adaptive controller's error threshold `t` (§5.3).
    pub fn max_relative_change(&self, other: &Statistics) -> f64 {
        fn rel(a: f64, b: f64) -> f64 {
            let denom = a.abs().max(1e-12);
            (a - b).abs() / denom
        }
        let mut worst: f64 = 0.0;
        for (a, b) in self.rates.iter().zip(&other.rates) {
            worst = worst.max(rel(*a, *b));
        }
        for (a, b) in self.single_sel.iter().zip(&other.single_sel) {
            worst = worst.max(rel(*a, *b));
        }
        for (a, b) in self.pred_sel.iter().zip(&other.pred_sel) {
            worst = worst.max(rel(*a, *b));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_is_rate_window_selectivity() {
        let s = Statistics::uniform(3, 0, 10).with_rate(1, 4.0).with_single_sel(1, 0.25);
        assert_eq!(s.card(0), 10.0);
        assert_eq!(s.card(1), 4.0 * 10.0 * 0.25);
    }

    #[test]
    fn validate_checks_dimensions_and_ranges() {
        let s = Statistics::uniform(2, 1, 10);
        assert!(s.validate(2, 1).is_ok());
        assert!(s.validate(3, 1).is_err());
        assert!(s.validate(2, 2).is_err());
        let bad = Statistics::uniform(2, 1, 10).with_pred_sel(0, 1.5);
        assert!(bad.validate(2, 1).is_err());
        let bad = Statistics::uniform(2, 1, 10).with_rate(0, f64::NAN);
        assert!(bad.validate(2, 1).is_err());
    }

    #[test]
    fn pred_product_multiplies() {
        let s = Statistics::uniform(2, 3, 10)
            .with_pred_sel(0, 0.5)
            .with_pred_sel(1, 0.1)
            .with_pred_sel(2, 1.0);
        assert!((s.pred_product([0, 1].into_iter()) - 0.05).abs() < 1e-12);
        assert_eq!(s.pred_product(std::iter::empty()), 1.0);
    }

    #[test]
    fn relative_change_detects_drift() {
        let a = Statistics::uniform(2, 1, 10);
        let mut b = a.clone();
        assert_eq!(a.max_relative_change(&b), 0.0);
        b = b.with_rate(0, 2.0);
        assert!((a.max_relative_change(&b) - 1.0).abs() < 1e-12);
    }
}
