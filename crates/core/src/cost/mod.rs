//! Cost model and plan optimization (§5 of the paper).
//!
//! * [`stats`] — the Table 1 statistics: per-class rates, single-class
//!   selectivities, time-predicate selectivities `Pt` and multi-class
//!   predicate selectivities,
//! * [`model`] — the Table 2 per-operator input/output cost formulas and the
//!   total-cost combination `C = Ci + (nk)·Ci + p·Co` with `k = 0.25`,
//!   `p = 1`,
//! * [`shape`] — physical tree shapes (left-deep, right-deep, bushy, …),
//! * [`dp`] — Algorithm 5: the O(n³) dynamic program over contiguous
//!   sub-patterns that finds the optimal (possibly bushy) operator order.

pub mod dp;
pub mod model;
pub mod shape;
pub mod stats;
