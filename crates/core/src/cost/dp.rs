//! Optimal operator ordering — Algorithm 5 of the paper (§5.2.3).
//!
//! The optimizer works over **units**: the positive building blocks of a
//! flat sequential pattern. A plain class is a unit; a Kleene closure fuses
//! with its anchor neighbors into a single trinary KSEQ unit (Figure 4
//! right); a negation handled by push-down fuses with the class that follows
//! it into an NSEQ unit (Figure 4 left); negations handled by a top filter
//! are kept out of the unit list and priced as a final NEG stage.
//!
//! Over those units, the dynamic program of Algorithm 5 finds the cheapest
//! binary join order — including bushy plans — in O(n³) by exploiting the
//! optimal-substructure property (Theorem 5.1): it grows optimal sub-plans
//! for every contiguous sub-range, recording the chosen root in a `ROOT`
//! matrix from which the final [`PlanShape`] is reconstructed.

use zstream_lang::{AnalyzedQuery, ClassId, KleeneKind, TypedPattern};

use crate::cost::model::{CostModel, OperatorCost};
use crate::cost::shape::PlanShape;
use crate::cost::stats::Statistics;
use crate::error::CoreError;

/// One positive unit of a sequential pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitKind {
    /// A plain event class.
    Class(ClassId),
    /// A Kleene closure fused with its anchors (KSEQ is trinary, §4.4.5).
    Kseq {
        /// Start anchor class (absent when the closure opens the pattern).
        start: Option<ClassId>,
        /// The closure class.
        closure: ClassId,
        /// Closure kind.
        kind: KleeneKind,
        /// End anchor class (absent when the closure ends the pattern).
        end: Option<ClassId>,
    },
    /// A pushed-down negation fused with the class that follows it:
    /// `!B;C` evaluated by `NSEQ(B, C)` (§4.4.2).
    Nseq {
        /// Negated classes (more than one for `!(B|C)`).
        neg: Vec<ClassId>,
        /// The non-negated anchor class `C`.
        anchor: ClassId,
    },
}

/// A unit plus its cached class mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// The unit kind.
    pub kind: UnitKind,
}

impl Unit {
    /// All classes covered by this unit, in pattern order.
    pub fn classes(&self) -> Vec<ClassId> {
        match &self.kind {
            UnitKind::Class(c) => vec![*c],
            UnitKind::Kseq { start, closure, end, .. } => {
                let mut v = Vec::new();
                if let Some(s) = start {
                    v.push(*s);
                }
                v.push(*closure);
                if let Some(e) = end {
                    v.push(*e);
                }
                v
            }
            UnitKind::Nseq { neg, anchor } => {
                let mut v = neg.clone();
                v.push(*anchor);
                v
            }
        }
    }

    /// Bitmask of covered classes.
    pub fn mask(&self) -> u64 {
        self.classes().iter().fold(0, |m, c| m | (1u64 << c))
    }

    /// Base cost and output cardinality of evaluating the unit itself.
    pub fn base_cost(&self, cm: &CostModel<'_>) -> (f64, f64) {
        match &self.kind {
            UnitKind::Class(c) => (0.0, cm.stats.card(*c)),
            UnitKind::Kseq { start, closure, kind, end } => {
                let oc = cm.kseq(*start, *closure, *kind, *end);
                (oc.total(), oc.output)
            }
            UnitKind::Nseq { neg, anchor } => {
                let oc = cm.nseq(neg, *anchor);
                (oc.total(), oc.output)
            }
        }
    }
}

/// A negation evaluated as a final filter stage (the `NEG` on top of the
/// plan, §4.4.2 / Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct TopNeg {
    /// Negated classes.
    pub neg: Vec<ClassId>,
    /// Class immediately preceding the negation in pattern order.
    pub prev: ClassId,
    /// Class immediately following the negation in pattern order.
    pub next: ClassId,
}

/// A complete physical plan specification: units, their join order, and how
/// each negation is evaluated.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// Positive units in pattern order.
    pub units: Vec<Unit>,
    /// Join order over the units.
    pub shape: PlanShape,
    /// Negations evaluated by a top filter (empty when all are pushed down).
    pub top_negs: Vec<TopNeg>,
    /// Estimated cost of the whole plan under the statistics it was built
    /// with (Formula 1 summed over all operators).
    pub est_cost: f64,
}

impl PlanSpec {
    /// Human-readable single-line description.
    pub fn describe(&self, aq: &AnalyzedQuery) -> String {
        let names: Vec<String> = self
            .units
            .iter()
            .map(|u| {
                let cs = u.classes();
                match &u.kind {
                    UnitKind::Class(c) => aq.classes[*c].name.clone(),
                    UnitKind::Kseq { .. } => format!(
                        "KSEQ({})",
                        cs.iter()
                            .map(|c| aq.classes[*c].name.as_str())
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                    UnitKind::Nseq { .. } => format!(
                        "NSEQ({})",
                        cs.iter()
                            .map(|c| aq.classes[*c].name.as_str())
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                }
            })
            .collect();
        let mut s = format!("shape {} over [{}]", self.shape, names.join(", "));
        for n in &self.top_negs {
            s.push_str(&format!(
                ", NEG({}) on top",
                n.neg.iter().map(|c| aq.classes[*c].name.as_str()).collect::<Vec<_>>().join("|")
            ));
        }
        s
    }
}

/// A term of the flattened sequential pattern.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    Pos(ClassId),
    Kleene(ClassId, KleeneKind),
    Neg(Vec<ClassId>),
}

/// Flattens a validated sequential pattern into terms, merging consecutive
/// negations (`!B;!C` ≡ `!(B|C)`), and rejecting shapes the sequential
/// planner cannot handle (conjunction/disjunction groups — those are planned
/// syntax-directed instead).
fn extract_terms(aq: &AnalyzedQuery) -> Result<Vec<Term>, CoreError> {
    let seq: Vec<&TypedPattern> = match &aq.pattern {
        TypedPattern::Seq(xs) => xs.iter().collect(),
        one @ (TypedPattern::Class(_) | TypedPattern::Kleene(_, _)) => vec![one],
        _ => {
            return Err(CoreError::UnsupportedPattern(
                "the sequential planner requires a flat sequence pattern".into(),
            ))
        }
    };
    let mut terms: Vec<Term> = Vec::new();
    for part in seq {
        match part {
            TypedPattern::Class(c) => terms.push(Term::Pos(*c)),
            TypedPattern::Kleene(c, k) => terms.push(Term::Kleene(*c, *k)),
            TypedPattern::Neg(inner) => {
                let classes = match inner.as_ref() {
                    TypedPattern::Class(c) => vec![*c],
                    TypedPattern::Disj(xs) => xs
                        .iter()
                        .map(|x| match x {
                            TypedPattern::Class(c) => Ok(*c),
                            _ => Err(CoreError::UnsupportedNegation(
                                "negated disjunction must contain only classes".into(),
                            )),
                        })
                        .collect::<Result<_, _>>()?,
                    _ => {
                        return Err(CoreError::UnsupportedNegation(
                            "only classes or disjunctions of classes can be negated".into(),
                        ))
                    }
                };
                // Merge consecutive negation terms.
                if let Some(Term::Neg(prev)) = terms.last_mut() {
                    prev.extend(classes);
                } else {
                    terms.push(Term::Neg(classes));
                }
            }
            _ => {
                return Err(CoreError::UnsupportedPattern(
                    "conjunction/disjunction groups are planned syntax-directed".into(),
                ))
            }
        }
    }
    if matches!(terms.first(), Some(Term::Neg(_))) || matches!(terms.last(), Some(Term::Neg(_))) {
        return Err(CoreError::UnsupportedNegation(
            "negation cannot open or close a pattern (§4.4.2: nothing to anchor to)".into(),
        ));
    }
    Ok(terms)
}

/// True when a negation group may be pushed down into an NSEQ: all its
/// multi-class predicates must apply to at most one non-negation class — the
/// anchor (§4.4.2, last paragraph).
fn pushdown_valid(aq: &AnalyzedQuery, neg: &[ClassId], anchor: ClassId) -> bool {
    let neg_mask: u64 = neg.iter().fold(0, |m, c| m | (1u64 << c));
    let allowed = neg_mask | (1u64 << anchor);
    aq.multi_preds.iter().filter(|p| p.mask & neg_mask != 0).all(|p| p.mask & !allowed == 0)
}

/// Builds the unit list for one per-negation strategy choice. `pushdown[g]`
/// decides the strategy of the `g`-th negation group.
fn build_units(
    _aq: &AnalyzedQuery,
    terms: &[Term],
    pushdown: &[bool],
) -> Result<(Vec<Unit>, Vec<TopNeg>), CoreError> {
    let mut units: Vec<Unit> = Vec::new();
    let mut top_negs = Vec::new();
    let mut pending_neg: Option<Vec<ClassId>> = None;
    let mut neg_group = 0usize;

    let mut i = 0;
    while i < terms.len() {
        match &terms[i] {
            Term::Neg(classes) => {
                let push = pushdown[neg_group];
                neg_group += 1;
                if push {
                    pending_neg = Some(classes.clone());
                } else {
                    let prev = match units.last() {
                        Some(u) => *u.classes().last().expect("units are nonempty"),
                        None => {
                            return Err(CoreError::UnsupportedNegation(
                                "negation cannot open a pattern".into(),
                            ))
                        }
                    };
                    let next = match &terms[i + 1] {
                        Term::Pos(c) | Term::Kleene(c, _) => *c,
                        Term::Neg(_) => unreachable!("consecutive negations are merged"),
                    };
                    top_negs.push(TopNeg { neg: classes.clone(), prev, next });
                }
                i += 1;
            }
            Term::Pos(c) => {
                if let Some(neg) = pending_neg.take() {
                    units.push(Unit { kind: UnitKind::Nseq { neg, anchor: *c } });
                } else {
                    units.push(Unit { kind: UnitKind::Class(*c) });
                }
                i += 1;
            }
            Term::Kleene(c, kind) => {
                if pending_neg.is_some() {
                    return Err(CoreError::UnsupportedNegation(
                        "negation adjacent to a Kleene closure is not supported".into(),
                    ));
                }
                // Fuse with the previous unit (start anchor) when it is a
                // plain class, and with the next positive class (end anchor).
                let start = match units.last() {
                    Some(Unit { kind: UnitKind::Class(s) }) => {
                        let s = *s;
                        units.pop();
                        Some(s)
                    }
                    Some(_) => {
                        return Err(CoreError::UnsupportedClosure(
                            "closure must be anchored by plain classes".into(),
                        ))
                    }
                    None => None,
                };
                let end = match terms.get(i + 1) {
                    Some(Term::Pos(e)) => {
                        i += 1; // consume the end anchor
                        Some(*e)
                    }
                    Some(Term::Kleene(..)) => {
                        return Err(CoreError::UnsupportedClosure(
                            "adjacent Kleene closures are not supported".into(),
                        ))
                    }
                    Some(Term::Neg(_)) => {
                        return Err(CoreError::UnsupportedNegation(
                            "negation adjacent to a Kleene closure is not supported".into(),
                        ))
                    }
                    None => {
                        if !matches!(kind, KleeneKind::Count(_)) {
                            return Err(CoreError::UnsupportedClosure(
                                "an unbounded closure cannot end a pattern (no end anchor \
                                 fixes the maximal group)"
                                    .into(),
                            ));
                        }
                        None
                    }
                };
                units.push(Unit { kind: UnitKind::Kseq { start, closure: *c, kind: *kind, end } });
                i += 1;
            }
        }
    }
    debug_assert!(pending_neg.is_none(), "trailing negation rejected earlier");
    Ok((units, top_negs))
}

/// Output of the dynamic program for one unit list.
struct DpResult {
    shape: PlanShape,
    cost: f64,
    card: f64,
}

/// Algorithm 5: O(n³) search over contiguous sub-ranges, bushy plans
/// included. `Min[s][i]`, `ROOT[s][i]` and `CARD[s][i]` follow the paper's
/// matrices (`s` = sub-tree size, `i` = sub-tree start, `r` = root cut).
fn dp_search(cm: &CostModel<'_>, units: &[Unit]) -> DpResult {
    let n = units.len();
    let masks: Vec<u64> = units.iter().map(Unit::mask).collect();
    // range_mask[i][j] = union of unit masks in [i, j).
    let mut range_mask = vec![vec![0u64; n + 1]; n + 1];
    for (i, row) in range_mask.iter_mut().enumerate().take(n) {
        let mut m = 0;
        for j in i..n {
            m |= masks[j];
            row[j + 1] = m;
        }
    }

    // min_cost[i][j], card[i][j], root[i][j] over range [i, j).
    let mut min_cost = vec![vec![f64::INFINITY; n + 1]; n + 1];
    let mut card = vec![vec![0.0f64; n + 1]; n + 1];
    let mut root = vec![vec![0usize; n + 1]; n + 1];

    for i in 0..n {
        let (c, k) = units[i].base_cost(cm);
        min_cost[i][i + 1] = c;
        card[i][i + 1] = k;
    }

    for s in 2..=n {
        for i in 0..=n - s {
            let j = i + s;
            for r in i + 1..j {
                let extra = if matches!(units[r].kind, UnitKind::Nseq { .. })
                    || range_starts_with_nseq(units, r)
                {
                    cm.nseq_survival()
                } else {
                    1.0
                };
                let oc: OperatorCost =
                    cm.seq(card[i][r], range_mask[i][r], card[r][j], range_mask[r][j], extra);
                let total = min_cost[i][r] + min_cost[r][j] + oc.total();
                if total < min_cost[i][j] {
                    min_cost[i][j] = total;
                    card[i][j] = oc.output;
                    root[i][j] = r;
                }
            }
        }
    }

    fn rebuild(root: &[Vec<usize>], i: usize, j: usize) -> PlanShape {
        if j - i == 1 {
            return PlanShape::Leaf(i);
        }
        let r = root[i][j];
        PlanShape::join(rebuild(root, i, r), rebuild(root, r, j))
    }

    DpResult { shape: rebuild(&root, 0, n), cost: min_cost[0][n], card: card[0][n] }
}

fn range_starts_with_nseq(units: &[Unit], r: usize) -> bool {
    matches!(units.get(r).map(|u| &u.kind), Some(UnitKind::Nseq { .. }))
}

/// Computes cost and output cardinality of a *given* shape over units (used
/// to price the paper's fixed left-deep/right-deep/bushy/inner plans for
/// Figures 9, 11 and 13).
fn cost_for_shape(cm: &CostModel<'_>, units: &[Unit], shape: &PlanShape) -> (f64, f64, u64) {
    match shape {
        PlanShape::Leaf(i) => {
            let (c, k) = units[*i].base_cost(cm);
            (c, k, units[*i].mask())
        }
        PlanShape::Join(l, r) => {
            let (cl, kl, ml) = cost_for_shape(cm, units, l);
            let (cr, kr, mr) = cost_for_shape(cm, units, r);
            let cut = r.range().0;
            let extra = if range_starts_with_nseq(units, cut) { cm.nseq_survival() } else { 1.0 };
            let oc = cm.seq(kl, ml, kr, mr, extra);
            (cl + cr + oc.total(), oc.output, ml | mr)
        }
    }
}

fn add_top_neg_costs(cm: &CostModel<'_>, top_negs: &[TopNeg], mut cost: f64, mut card: f64) -> f64 {
    for tn in top_negs {
        let neg_mask: u64 = tn.neg.iter().fold(0, |m, c| m | (1u64 << c));
        let npreds = cm.aq.multi_preds.iter().filter(|p| p.mask & neg_mask != 0).count();
        let oc = cm.neg_top(card, npreds);
        cost += oc.total();
        card = oc.output;
    }
    cost
}

/// Searches for the optimal plan for a flat sequential pattern: for every
/// per-negation strategy choice (push-down vs. top filter) it runs
/// Algorithm 5 and keeps the cheapest complete plan.
///
/// ```
/// use zstream_core::{search_optimal, PlanShape, Statistics};
/// use zstream_events::Schema;
/// use zstream_lang::{analyze, Query, SchemaMap};
///
/// let aq = analyze(
///     &Query::parse("PATTERN A; B; C WITHIN 10").unwrap(),
///     &SchemaMap::uniform(Schema::stocks()),
/// ).unwrap();
/// // A is rare: joining it first (left-deep) is optimal.
/// let stats = Statistics::uniform(3, 0, 10).with_rates(&[0.01, 1.0, 1.0]);
/// let spec = search_optimal(&aq, &stats).unwrap();
/// assert_eq!(spec.shape, PlanShape::left_deep(3));
/// ```
pub fn search_optimal(aq: &AnalyzedQuery, stats: &Statistics) -> Result<PlanSpec, CoreError> {
    stats.validate(aq.num_classes(), aq.multi_preds.len())?;
    let cm = CostModel::new(aq, stats);
    let terms = extract_terms(aq)?;
    let neg_groups: Vec<usize> = terms
        .iter()
        .enumerate()
        .filter_map(|(i, t)| matches!(t, Term::Neg(_)).then_some(i))
        .collect();
    let k = neg_groups.len();
    assert!(k <= 16, "patterns with more than 16 negation groups are unrealistic");

    let mut best: Option<PlanSpec> = None;
    for combo in 0..(1usize << k) {
        let mut pushdown = vec![false; k];
        let mut valid = true;
        for (g, term_idx) in neg_groups.iter().enumerate() {
            let push = combo & (1 << g) != 0;
            if push {
                // The anchor is the next positive class.
                let anchor = match &terms[term_idx + 1] {
                    Term::Pos(c) => *c,
                    _ => {
                        valid = false;
                        break;
                    }
                };
                let Term::Neg(neg) = &terms[*term_idx] else { unreachable!() };
                if !pushdown_valid(aq, neg, anchor) {
                    valid = false;
                    break;
                }
            }
            pushdown[g] = push;
        }
        if !valid {
            continue;
        }
        let (units, top_negs) = match build_units(aq, &terms, &pushdown) {
            Ok(x) => x,
            Err(_) if combo != 0 => continue,
            Err(e) => return Err(e),
        };
        let dp = dp_search(&cm, &units);
        let cost = add_top_neg_costs(&cm, &top_negs, dp.cost, dp.card);
        if best.as_ref().is_none_or(|b| cost < b.est_cost) {
            best = Some(PlanSpec { units, shape: dp.shape, top_negs, est_cost: cost });
        }
    }
    best.ok_or_else(|| CoreError::UnsupportedPattern("no viable plan found for the pattern".into()))
}

/// Negation strategy requested by [`spec_with_shape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegStrategy {
    /// Push every negation into an NSEQ when §4.4.2 allows it, otherwise
    /// fall back to a top filter per group.
    PushdownPreferred,
    /// Evaluate every negation as a top filter (the "last-filter-step"
    /// baseline of §4.4.2).
    TopFilter,
}

/// Builds a [`PlanSpec`] with a caller-chosen shape (left-deep, right-deep,
/// …) and negation strategy — the fixed plans the paper benchmarks against.
pub fn spec_with_shape(
    aq: &AnalyzedQuery,
    stats: &Statistics,
    shape: PlanShape,
    neg: NegStrategy,
) -> Result<PlanSpec, CoreError> {
    stats.validate(aq.num_classes(), aq.multi_preds.len())?;
    let cm = CostModel::new(aq, stats);
    let terms = extract_terms(aq)?;
    let neg_terms: Vec<usize> = terms
        .iter()
        .enumerate()
        .filter_map(|(i, t)| matches!(t, Term::Neg(_)).then_some(i))
        .collect();
    let pushdown: Vec<bool> = neg_terms
        .iter()
        .map(|ti| match neg {
            NegStrategy::TopFilter => false,
            NegStrategy::PushdownPreferred => {
                let anchor = match &terms[ti + 1] {
                    Term::Pos(c) => Some(*c),
                    _ => None,
                };
                let Term::Neg(negs) = &terms[*ti] else { unreachable!() };
                anchor.is_some_and(|a| pushdown_valid(aq, negs, a))
            }
        })
        .collect();
    let (units, top_negs) = build_units(aq, &terms, &pushdown)?;
    shape.validate(units.len())?;
    let (cost, card, _) = cost_for_shape(&cm, &units, &shape);
    let est_cost = add_top_neg_costs(&cm, &top_negs, cost, card);
    Ok(PlanSpec { units, shape, top_negs, est_cost })
}

/// Re-prices an existing [`PlanSpec`] under (possibly different) statistics.
pub fn plan_cost(aq: &AnalyzedQuery, stats: &Statistics, spec: &PlanSpec) -> f64 {
    let cm = CostModel::new(aq, stats);
    let (cost, card, _) = cost_for_shape(&cm, &spec.units, &spec.shape);
    add_top_neg_costs(&cm, &spec.top_negs, cost, card)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstream_events::Schema;
    use zstream_lang::{analyze, Query, SchemaMap};

    fn aq(src: &str) -> AnalyzedQuery {
        analyze(&Query::parse(src).unwrap(), &SchemaMap::uniform(Schema::stocks())).unwrap()
    }

    #[test]
    fn extracts_units_for_pure_sequence() {
        let q = aq("PATTERN A; B; C WITHIN 10");
        let s = Statistics::uniform(3, 0, 10);
        let spec = search_optimal(&q, &s).unwrap();
        assert_eq!(spec.units.len(), 3);
        assert!(spec.top_negs.is_empty());
        spec.shape.validate(3).unwrap();
    }

    #[test]
    fn low_rate_class_joined_first() {
        let q = aq("PATTERN A; B; C WITHIN 10");
        // A is rare: the left-deep plan (combining A first) should win.
        let s = Statistics::uniform(3, 0, 10).with_rates(&[0.01, 1.0, 1.0]);
        let spec = search_optimal(&q, &s).unwrap();
        assert_eq!(spec.shape, PlanShape::left_deep(3));
        // C is rare: right-deep wins.
        let s = Statistics::uniform(3, 0, 10).with_rates(&[1.0, 1.0, 0.01]);
        let spec = search_optimal(&q, &s).unwrap();
        assert_eq!(spec.shape, PlanShape::right_deep(3));
    }

    #[test]
    fn selective_predicate_pulls_join_forward() {
        // Query 6 regime 2: selective predicate between classes 1 and 2
        // makes the inner plan [0, [[1,2],3]] optimal.
        let q = aq("PATTERN IBM; Sun; Oracle; Google \
             WHERE Oracle.price > Sun.price AND Oracle.price > Google.price \
             WITHIN 100");
        let s = Statistics::uniform(4, 2, 100).with_pred_sel(0, 1.0 / 50.0).with_pred_sel(1, 1.0);
        let spec = search_optimal(&q, &s).unwrap();
        assert_eq!(spec.shape, PlanShape::inner4());
    }

    #[test]
    fn dp_matches_exhaustive_enumeration() {
        let q = aq("PATTERN A; B; C; D; E \
             WHERE A.price > B.price AND C.price > D.price AND B.price > E.price \
             WITHIN 50");
        // A few deterministic pseudo-random statistics settings.
        for seed in 0u64..20 {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1000) as f64 / 1000.0
            };
            let s = Statistics::uniform(5, 3, 50)
                .with_rates(&[
                    0.05 + next(),
                    0.05 + next(),
                    0.05 + next(),
                    0.05 + next(),
                    0.05 + next(),
                ])
                .with_pred_sel(0, 0.05 + 0.9 * next())
                .with_pred_sel(1, 0.05 + 0.9 * next())
                .with_pred_sel(2, 0.05 + 0.9 * next());
            let spec = search_optimal(&q, &s).unwrap();
            let best_exhaustive = PlanShape::enumerate_all(5)
                .into_iter()
                .map(|sh| spec_with_shape(&q, &s, sh, NegStrategy::PushdownPreferred).unwrap())
                .map(|sp| sp.est_cost)
                .fold(f64::INFINITY, f64::min);
            assert!(
                (spec.est_cost - best_exhaustive).abs() <= 1e-6 * best_exhaustive.max(1.0),
                "seed {seed}: DP cost {} != exhaustive best {best_exhaustive}",
                spec.est_cost
            );
        }
    }

    #[test]
    fn negation_strategies_compared() {
        let q = aq("PATTERN IBM; !Sun; Oracle WITHIN 200");
        let s = Statistics::uniform(3, 0, 200);
        let spec = search_optimal(&q, &s).unwrap();
        // Push-down wins under uniform statistics (Figure 15/16).
        assert!(spec.top_negs.is_empty());
        assert!(matches!(
            spec.units.iter().map(|u| &u.kind).collect::<Vec<_>>()[..],
            [UnitKind::Class(0), UnitKind::Nseq { .. }]
        ));

        let top = spec_with_shape(&q, &s, PlanShape::left_deep(2), NegStrategy::TopFilter).unwrap();
        assert_eq!(top.top_negs.len(), 1);
        assert!(spec.est_cost < top.est_cost);
    }

    #[test]
    fn pushdown_rejected_when_predicates_span_both_sides() {
        // Sun (negated) has predicates against both IBM and Oracle: §4.4.2
        // forces the top filter.
        let q = aq("PATTERN IBM; !Sun; Oracle \
             WHERE Sun.price > IBM.price AND Sun.price < Oracle.price \
             WITHIN 200");
        let s = Statistics::uniform(3, 2, 200);
        let spec = search_optimal(&q, &s).unwrap();
        assert_eq!(spec.top_negs.len(), 1);
        assert_eq!(spec.units.len(), 2);
    }

    #[test]
    fn kleene_fuses_into_trinary_unit() {
        let q = aq("PATTERN T1; T2^5; T3 WITHIN 10");
        let s = Statistics::uniform(3, 0, 10);
        let spec = search_optimal(&q, &s).unwrap();
        assert_eq!(spec.units.len(), 1);
        assert!(matches!(
            spec.units[0].kind,
            UnitKind::Kseq { start: Some(0), closure: 1, kind: KleeneKind::Count(5), end: Some(2) }
        ));
    }

    #[test]
    fn kleene_with_tail_classes_still_plans() {
        let q = aq("PATTERN A; B*; C; D WITHIN 10");
        let s = Statistics::uniform(4, 0, 10);
        let spec = search_optimal(&q, &s).unwrap();
        assert_eq!(spec.units.len(), 2);
    }

    #[test]
    fn unbounded_closure_at_end_rejected() {
        let q = aq("PATTERN A; B* WITHIN 10");
        let s = Statistics::uniform(2, 0, 10);
        assert!(matches!(search_optimal(&q, &s), Err(CoreError::UnsupportedClosure(_))));
    }

    #[test]
    fn counted_closure_at_end_accepted() {
        let q = aq("PATTERN A; B^3 WITHIN 10");
        let s = Statistics::uniform(2, 0, 10);
        let spec = search_optimal(&q, &s).unwrap();
        assert!(matches!(
            spec.units[0].kind,
            UnitKind::Kseq { start: Some(0), closure: 1, end: None, .. }
        ));
    }

    #[test]
    fn planner_is_fast_for_length_20() {
        // §5.2.3: "less than 10 ms to search for an optimal plan with
        // pattern length 20" — allow slack for debug builds.
        let names: Vec<String> = (0..20).map(|i| format!("C{i}")).collect();
        let q = aq(&format!("PATTERN {} WITHIN 100", names.join("; ")));
        let s = Statistics::uniform(20, 0, 100);
        let t0 = std::time::Instant::now();
        let spec = search_optimal(&q, &s).unwrap();
        let dt = t0.elapsed();
        spec.shape.validate(20).unwrap();
        assert!(dt.as_millis() < 1000, "planner took {dt:?}");
    }

    #[test]
    fn repricing_under_new_stats_changes_cost() {
        let q = aq("PATTERN A; B; C WITHIN 10");
        let s1 = Statistics::uniform(3, 0, 10);
        let spec =
            spec_with_shape(&q, &s1, PlanShape::left_deep(3), NegStrategy::PushdownPreferred)
                .unwrap();
        let s2 = Statistics::uniform(3, 0, 10).with_rates(&[10.0, 1.0, 1.0]);
        let c2 = plan_cost(&q, &s2, &spec);
        assert!(c2 > spec.est_cost);
    }

    #[test]
    fn conjunction_pattern_rejected_by_sequential_planner() {
        let q = aq("PATTERN A & B WITHIN 10");
        let s = Statistics::uniform(2, 0, 10);
        assert!(matches!(search_optimal(&q, &s), Err(CoreError::UnsupportedPattern(_))));
    }
}
