//! Per-operator cost formulas — Table 2 of the paper.
//!
//! The total cost of an operator is (Formula 1):
//!
//! ```text
//! C = Ci + (n·k)·Ci + p·Co
//! ```
//!
//! where `Ci` is the input-access cost (number of input combinations tried),
//! `Co` the output cost (number of composite events generated, `CARD_O`),
//! `n` the number of multi-class predicates evaluated at the operator,
//! `k = 0.25` and `p = 1` (experimentally determined in the paper, §5.1).
//!
//! | Operator          | Input cost `Ci`                         | Output cost `Co`                                  |
//! |-------------------|-----------------------------------------|---------------------------------------------------|
//! | Sequence `A;B`    | `CARD_A·CARD_B·Pt`                      | `Ci·P_{A,B}`                                      |
//! | Conjunction `A&B` | `CARD_A·CARD_B`                         | `Ci·P_{A,B}`                                      |
//! | Disjunction `A|B` | `CARD_A + CARD_B`                       | `CARD_A + CARD_B`                                 |
//! | Kleene `A;B^c;C`  | `CARD_A·CARD_C·Pt·N`                    | `Ci·P_{A,C}·P_{A,B}·P_{B,C}`                      |
//! | NSEQ (pushed)     | `CARD_C` (+ parent SEQ as usual)        | `CARD_C`; parent SEQ output ×`(1 − Pt·Pt)`        |
//! | NEG (on top)      | `CARD_SEQ`                              | `CARD_SEQ·(1 − Pt·Pt)·Pt`                         |
//!
//! with `N = CARD_B·Pt_{A,B}·Pt_{B,C}·cnt` (`cnt` omitted when unspecified,
//! `N = 1` when the closure class is missing, anchor terms set to 1 when the
//! start/end class is missing).
//!
//! One deliberate deviation from the literal table: the table's
//! negation-on-top row folds the underlying SEQ's costs (`Ci_SEQ`,
//! `CARD_SEQ`) into the NEG row. Since this crate sums operator costs over
//! the whole tree (which already includes the SEQ), the NEG operator here
//! prices only its own work; the comparison between the two negation
//! strategies is unchanged.

use zstream_lang::{AnalyzedQuery, ClassId, KleeneKind};

use crate::cost::stats::Statistics;

/// Weight of predicate evaluation relative to input access (`k` in
/// Formula 1); the paper estimates 0.25.
pub const COST_K: f64 = 0.25;

/// Weight of output generation (`p` in Formula 1); the paper uses 1.
pub const COST_P: f64 = 1.0;

/// Input/output cost of one operator, per Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorCost {
    /// `Ci` — the number of input combinations accessed.
    pub input: f64,
    /// `Co = CARD_O` — the number of composite events generated.
    pub output: f64,
    /// `n` — multi-class predicates evaluated at this operator.
    pub npreds: usize,
}

impl OperatorCost {
    /// Total cost `C = Ci·(1 + n·k) + p·Co` (Formula 1).
    pub fn total(&self) -> f64 {
        self.input * (1.0 + self.npreds as f64 * COST_K) + COST_P * self.output
    }
}

/// The cost model: Table 2 formulas evaluated against [`Statistics`] for one
/// analyzed query.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    /// The analyzed query (for predicate masks).
    pub aq: &'a AnalyzedQuery,
    /// Input statistics.
    pub stats: &'a Statistics,
}

impl<'a> CostModel<'a> {
    /// Creates a model over a query and statistics.
    pub fn new(aq: &'a AnalyzedQuery, stats: &'a Statistics) -> Self {
        CostModel { aq, stats }
    }

    /// Predicates that become applicable when class sets `ml` and `mr` are
    /// joined: every predicate fully contained in the union and touching
    /// both sides. Returns `(count, selectivity product)`.
    pub fn crossing_preds(&self, ml: u64, mr: u64) -> (usize, f64) {
        let union = ml | mr;
        let mut n = 0;
        let mut sel = 1.0;
        for (i, p) in self.aq.multi_preds.iter().enumerate() {
            if p.mask & !union == 0 && p.mask & ml != 0 && p.mask & mr != 0 {
                n += 1;
                sel *= self.stats.pred_sel(i);
            }
        }
        (n, sel)
    }

    /// Predicates fully contained within one class set (used by units that
    /// evaluate several classes internally, e.g. KSEQ).
    pub fn internal_preds(&self, mask: u64) -> (usize, f64) {
        let mut n = 0;
        let mut sel = 1.0;
        for (i, p) in self.aq.multi_preds.iter().enumerate() {
            if p.mask & !mask == 0 && (p.mask.count_ones() >= 2 || p.mask != 0) {
                n += 1;
                sel *= self.stats.pred_sel(i);
            }
        }
        (n, sel)
    }

    /// Sequence `A;B` over operands with cardinalities `card_l`/`card_r` and
    /// class sets `ml`/`mr`. `extra_sel` folds in negation-survival factors
    /// ((1 − Pt·Pt) when the right operand starts with a pushed-down NSEQ).
    pub fn seq(&self, card_l: f64, ml: u64, card_r: f64, mr: u64, extra_sel: f64) -> OperatorCost {
        let ci = card_l * card_r * self.stats.pt();
        let (n, sel) = self.crossing_preds(ml, mr);
        OperatorCost { input: ci, output: ci * sel * extra_sel, npreds: n }
    }

    /// Conjunction `A&B`: both combination directions are tried, so no time
    /// predicate applies to the input cost.
    pub fn conj(&self, card_l: f64, ml: u64, card_r: f64, mr: u64) -> OperatorCost {
        let ci = card_l * card_r;
        let (n, sel) = self.crossing_preds(ml, mr);
        OperatorCost { input: ci, output: ci * sel, npreds: n }
    }

    /// Disjunction `A|B`: a merge of the two inputs; multi-class predicates
    /// do not apply (an event on either input can produce an output).
    pub fn disj(&self, card_l: f64, card_r: f64) -> OperatorCost {
        let ci = card_l + card_r;
        OperatorCost { input: ci, output: ci, npreds: 0 }
    }

    /// Kleene closure `A;B^cnt;C` with optional anchors. Missing anchors set
    /// their factors to 1 per Table 2.
    pub fn kseq(
        &self,
        start: Option<ClassId>,
        closure: ClassId,
        kind: KleeneKind,
        end: Option<ClassId>,
    ) -> OperatorCost {
        let pt = self.stats.pt();
        let card_b = self.stats.card(closure);
        let cnt_factor = match kind {
            KleeneKind::Count(c) => c as f64,
            KleeneKind::Star | KleeneKind::Plus => 1.0,
        };
        let pt_ab = if start.is_some() { pt } else { 1.0 };
        let pt_bc = if end.is_some() { pt } else { 1.0 };
        let n_mid = card_b * pt_ab * pt_bc * cnt_factor;
        let card_a = start.map_or(1.0, |c| self.stats.card(c));
        let card_c = end.map_or(1.0, |c| self.stats.card(c));
        let pt_ac = if start.is_some() && end.is_some() { pt } else { 1.0 };
        let ci = card_a * card_c * pt_ac * n_mid;
        let mask = start.map_or(0, |c| 1 << c) | (1u64 << closure) | end.map_or(0, |c| 1 << c);
        let (n, sel) = self.internal_preds(mask);
        OperatorCost { input: ci, output: ci * sel, npreds: n }
    }

    /// The NSEQ operator with negation classes `neg` anchored on class
    /// `anchor` (`!B;C` with `anchor = C`). Per Table 2 the input cost is
    /// `CARD_C`, *not* related to `CARD_B`: the negating event is found
    /// directly as the latest B before each C. Output is one record per
    /// anchor instance.
    pub fn nseq(&self, neg: &[ClassId], anchor: ClassId) -> OperatorCost {
        let card_c = self.stats.card(anchor);
        let mask = neg.iter().fold(1u64 << anchor, |m, c| m | (1 << c));
        let (n, _) = self.internal_preds(mask);
        OperatorCost { input: card_c, output: card_c, npreds: n }
    }

    /// The survival factor applied to a SEQ output when its right operand
    /// starts with a pushed-down NSEQ: `(1 − Pt_{A,C}·Pt_{B,C})` (Table 2).
    pub fn nseq_survival(&self) -> f64 {
        1.0 - self.stats.pt() * self.stats.pt()
    }

    /// Negation-on-top filter over `card_in` composite inputs. Input cost is
    /// the number of composites checked; output applies the non-negated
    /// survival fraction `(1 − Pt_{A,B}·Pt_{B,C})·Pt_{A,C}` from Table 2.
    /// `npreds` is the number of predicates involving the negated classes
    /// that could not be pushed into the plan.
    pub fn neg_top(&self, card_in: f64, npreds: usize) -> OperatorCost {
        let pt = self.stats.pt();
        OperatorCost { input: card_in, output: card_in * (1.0 - pt * pt) * pt, npreds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstream_events::Schema;
    use zstream_lang::{analyze, Query, SchemaMap};

    fn aq(src: &str) -> AnalyzedQuery {
        analyze(&Query::parse(src).unwrap(), &SchemaMap::uniform(Schema::stocks())).unwrap()
    }

    #[test]
    fn formula1_combines_terms() {
        let c = OperatorCost { input: 100.0, output: 40.0, npreds: 2 };
        // 100*(1 + 2*0.25) + 40 = 150 + 40 = 190.
        assert!((c.total() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn seq_cost_uses_pt_and_crossing_preds() {
        let q = aq("PATTERN A; B; C WHERE A.price > B.price WITHIN 10");
        let stats = Statistics::uniform(3, 1, 10).with_pred_sel(0, 0.25);
        let m = CostModel::new(&q, &stats);
        // CARD = 1*10*1 = 10 for each class.
        let c = m.seq(10.0, 0b001, 10.0, 0b010, 1.0);
        assert_eq!(c.npreds, 1);
        assert!((c.input - 50.0).abs() < 1e-9); // 10*10*0.5
        assert!((c.output - 12.5).abs() < 1e-9); // 50*0.25

        // Joining A with C: the A-B predicate does not cross.
        let c = m.seq(10.0, 0b001, 10.0, 0b100, 1.0);
        assert_eq!(c.npreds, 0);
        assert!((c.output - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pred_already_applied_below_does_not_recross() {
        let q = aq("PATTERN A; B; C WHERE A.price > B.price WITHIN 10");
        let stats = Statistics::uniform(3, 1, 10);
        let m = CostModel::new(&q, &stats);
        // (A,B) joined below; joining (AB) with C must not re-apply the pred.
        let c = m.seq(25.0, 0b011, 10.0, 0b100, 1.0);
        assert_eq!(c.npreds, 0);
    }

    #[test]
    fn conjunction_has_no_time_predicate() {
        let q = aq("PATTERN A & B WITHIN 10");
        let stats = Statistics::uniform(2, 0, 10);
        let m = CostModel::new(&q, &stats);
        let c = m.conj(10.0, 0b01, 10.0, 0b10);
        assert!((c.input - 100.0).abs() < 1e-9);
        // C_DIS < C_SEQ < C_CON ordering from §5.2.1:
        let s = m.seq(10.0, 0b01, 10.0, 0b10, 1.0);
        let d = m.disj(10.0, 10.0);
        assert!(d.total() < s.total() && s.total() < c.total());
    }

    #[test]
    fn kseq_count_scales_middle_accesses() {
        let q = aq("PATTERN A; B^5; C WITHIN 10");
        let stats = Statistics::uniform(3, 0, 10);
        let m = CostModel::new(&q, &stats);
        let c5 = m.kseq(Some(0), 1, KleeneKind::Count(5), Some(2));
        let cstar = m.kseq(Some(0), 1, KleeneKind::Star, Some(2));
        assert!((c5.input / cstar.input - 5.0).abs() < 1e-9);
    }

    #[test]
    fn kseq_missing_anchor_drops_factors() {
        let q = aq("PATTERN B*; C WITHIN 10");
        let stats = Statistics::uniform(2, 0, 10);
        let m = CostModel::new(&q, &stats);
        let c = m.kseq(None, 0, KleeneKind::Star, Some(1));
        // N = CARD_B * 1 * Pt = 10*0.5 = 5; Ci = 1 * CARD_C * 1 * N = 50.
        assert!((c.input - 50.0).abs() < 1e-9);
    }

    #[test]
    fn nseq_input_unrelated_to_negation_rate() {
        let q = aq("PATTERN A; !B; C WITHIN 10");
        let stats = Statistics::uniform(3, 0, 10).with_rate(1, 1000.0);
        let m = CostModel::new(&q, &stats);
        let c = m.nseq(&[1], 2);
        assert!((c.input - 10.0).abs() < 1e-9, "Ci = CARD_C regardless of B rate");
        assert!((c.output - 10.0).abs() < 1e-9);
    }

    #[test]
    fn neg_strategies_favor_pushdown() {
        let q = aq("PATTERN A; !B; C WITHIN 10");
        let stats = Statistics::uniform(3, 0, 10).with_rates(&[10.0, 1.0, 10.0]);
        let m = CostModel::new(&q, &stats);
        // NSEQ plan: nseq + seq with survival factor.
        let nseq = m.nseq(&[1], 2);
        let top_seq = m.seq(stats.card(0), 0b001, nseq.output, 0b110, m.nseq_survival());
        let pushdown = nseq.total() + top_seq.total();
        // NEG-on-top plan: seq(A, C) + filter.
        let seq_ac = m.seq(stats.card(0), 0b001, stats.card(2), 0b100, 1.0);
        let top = seq_ac.total() + m.neg_top(seq_ac.output, 0).total();
        assert!(pushdown < top, "pushdown {pushdown} should beat top {top}");
    }
}
