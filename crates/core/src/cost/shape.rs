//! Physical tree shapes.
//!
//! A given logical sequence pattern has many equivalent physical trees
//! (§5.2.3): left-deep, right-deep, bushy, and everything in between. A
//! [`PlanShape`] is a binary tree whose leaves are *unit indexes* — positions
//! in the pattern's positive unit list — and whose in-order traversal must be
//! `0, 1, …, n-1` (operators combine adjacent sub-patterns; reordering is in
//! the *evaluation order*, not the pattern order).

use std::fmt;

use crate::error::CoreError;

/// A binary evaluation-order tree over pattern units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanShape {
    /// A single pattern unit.
    Leaf(usize),
    /// Combine two adjacent sub-shapes.
    Join(Box<PlanShape>, Box<PlanShape>),
}

impl PlanShape {
    /// Joins two shapes.
    pub fn join(left: PlanShape, right: PlanShape) -> PlanShape {
        PlanShape::Join(Box::new(left), Box::new(right))
    }

    /// The left-deep shape `[[[0,1],2],…]` over `n` units.
    pub fn left_deep(n: usize) -> PlanShape {
        assert!(n >= 1);
        let mut s = PlanShape::Leaf(0);
        for i in 1..n {
            s = PlanShape::join(s, PlanShape::Leaf(i));
        }
        s
    }

    /// The right-deep shape `[0,[1,[2,…]]]` over `n` units.
    pub fn right_deep(n: usize) -> PlanShape {
        assert!(n >= 1);
        let mut s = PlanShape::Leaf(n - 1);
        for i in (0..n - 1).rev() {
            s = PlanShape::join(PlanShape::Leaf(i), s);
        }
        s
    }

    /// The balanced bushy shape, e.g. `[[0,1],[2,3]]` for `n = 4`.
    pub fn bushy(n: usize) -> PlanShape {
        assert!(n >= 1);
        fn build(lo: usize, hi: usize) -> PlanShape {
            if hi - lo == 1 {
                return PlanShape::Leaf(lo);
            }
            let mid = lo + (hi - lo) / 2;
            PlanShape::join(build(lo, mid), build(mid, hi))
        }
        build(0, n)
    }

    /// The "inner" shape of the paper's Query 6 experiment for `n = 4`:
    /// `[0, [[1, 2], 3]]` — evaluate the middle pair first.
    pub fn inner4() -> PlanShape {
        PlanShape::join(
            PlanShape::Leaf(0),
            PlanShape::join(
                PlanShape::join(PlanShape::Leaf(1), PlanShape::Leaf(2)),
                PlanShape::Leaf(3),
            ),
        )
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            PlanShape::Leaf(_) => 1,
            PlanShape::Join(l, r) => l.num_leaves() + r.num_leaves(),
        }
    }

    /// Leaf indexes in in-order traversal.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            PlanShape::Leaf(i) => out.push(*i),
            PlanShape::Join(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// The contiguous unit range `[lo, hi)` covered by this shape, assuming
    /// it is validated.
    pub fn range(&self) -> (usize, usize) {
        match self {
            PlanShape::Leaf(i) => (*i, i + 1),
            PlanShape::Join(l, r) => (l.range().0, r.range().1),
        }
    }

    /// Validates that the shape covers exactly units `0..n` in order.
    pub fn validate(&self, n: usize) -> Result<(), CoreError> {
        let leaves = self.leaves();
        if leaves.len() != n {
            return Err(CoreError::ShapeMismatch { expected: n, found: leaves.len() });
        }
        if leaves.iter().enumerate().any(|(i, l)| *l != i) {
            return Err(CoreError::UnsupportedPattern(format!(
                "plan shape must traverse units in pattern order, got {leaves:?}"
            )));
        }
        Ok(())
    }

    /// Enumerates every shape over `n` units (Catalan-many; for tests and
    /// exhaustive-optimality checks on small `n`).
    pub fn enumerate_all(n: usize) -> Vec<PlanShape> {
        fn build(lo: usize, hi: usize) -> Vec<PlanShape> {
            if hi - lo == 1 {
                return vec![PlanShape::Leaf(lo)];
            }
            let mut out = Vec::new();
            for cut in lo + 1..hi {
                for l in build(lo, cut) {
                    for r in build(cut, hi) {
                        out.push(PlanShape::join(l.clone(), r));
                    }
                }
            }
            out
        }
        assert!(n >= 1);
        build(0, n)
    }
}

impl fmt::Display for PlanShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanShape::Leaf(i) => write!(f, "{i}"),
            PlanShape::Join(l, r) => write!(f, "[{l}, {r}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_shapes_cover_units_in_order() {
        for n in 1..=6 {
            for s in [PlanShape::left_deep(n), PlanShape::right_deep(n), PlanShape::bushy(n)] {
                s.validate(n).unwrap();
                assert_eq!(s.num_leaves(), n);
                assert_eq!(s.range(), (0, n));
            }
        }
        PlanShape::inner4().validate(4).unwrap();
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(PlanShape::left_deep(4).to_string(), "[[[0, 1], 2], 3]");
        assert_eq!(PlanShape::right_deep(4).to_string(), "[0, [1, [2, 3]]]");
        assert_eq!(PlanShape::bushy(4).to_string(), "[[0, 1], [2, 3]]");
        assert_eq!(PlanShape::inner4().to_string(), "[0, [[1, 2], 3]]");
    }

    #[test]
    fn validate_rejects_wrong_order_or_count() {
        let bad = PlanShape::join(PlanShape::Leaf(1), PlanShape::Leaf(0));
        assert!(bad.validate(2).is_err());
        assert!(PlanShape::left_deep(3).validate(4).is_err());
    }

    #[test]
    fn enumerate_counts_catalan() {
        // C_1=1, C_2=1, C_3=2, C_4=5, C_5=14 shapes over n leaves.
        assert_eq!(PlanShape::enumerate_all(1).len(), 1);
        assert_eq!(PlanShape::enumerate_all(2).len(), 1);
        assert_eq!(PlanShape::enumerate_all(3).len(), 2);
        assert_eq!(PlanShape::enumerate_all(4).len(), 5);
        assert_eq!(PlanShape::enumerate_all(5).len(), 14);
        for s in PlanShape::enumerate_all(5) {
            s.validate(5).unwrap();
        }
    }
}
