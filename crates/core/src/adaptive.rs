//! Plan adaptation (§5.3).
//!
//! Input rates and selectivities drift, so an initially optimal plan may
//! stop being optimal. The adaptive engine maintains running estimates of
//! the Table 1 statistics with windowed averages:
//!
//! * per-class **rates** and single-class **selectivities** from the
//!   engine's intake counters,
//! * **multi-class predicate selectivities** by sampling event pairs from
//!   the live leaf buffers and evaluating the predicates on them,
//!
//! and every `check_interval` rounds compares them against the statistics
//! the current plan was built with. When any statistic moved by more than
//! the error threshold `t`, Algorithm 5 re-runs; the new plan is installed
//! only when the predicted improvement exceeds the performance threshold
//! `c`. Switching happens on a round boundary: intermediate state is
//! discarded and rebuilt from the retained leaf buffers, trigger-class
//! cursors are preserved, so no duplicates or losses occur (§5.3's two-step
//! switch protocol).

use std::sync::Arc;

use zstream_events::{EventBatch, EventRef, Record, Ts};
use zstream_lang::{AnalyzedQuery, EventBinding};
use zstream_obs::{Counter, Obs, PlanCandidate, ReplanDecision, StatSeries, TraceKind};

use crate::cost::dp::{plan_cost, search_optimal, PlanSpec};
use crate::cost::stats::Statistics;
use crate::engine::Engine;
use crate::error::CoreError;
use crate::physical::plan::PhysicalPlan;

/// Adaptive controller configuration.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Re-estimate statistics every this many assembly rounds.
    pub check_interval: u64,
    /// Error threshold `t`: re-plan when any statistic's relative change
    /// exceeds this.
    pub error_threshold: f64,
    /// Performance threshold `c`: install a new plan only when
    /// `cost(current)/cost(new)` exceeds this ratio.
    pub improvement_threshold: f64,
    /// Event pairs sampled per multi-class predicate when estimating its
    /// selectivity.
    pub sample_pairs: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            check_interval: 8,
            error_threshold: 0.25,
            improvement_threshold: 1.10,
            sample_pairs: 64,
        }
    }
}

/// Snapshot of intake counters for windowed rate estimation.
#[derive(Debug, Clone, Default)]
struct CounterSnapshot {
    offered: Vec<u64>,
    admitted: Vec<u64>,
    watermark: Ts,
}

/// Decision-log wiring for one adaptive controller (see
/// [`AdaptiveEngine::attach_obs`]).
#[derive(Debug)]
struct AdaptiveObs {
    hub: Arc<Obs>,
    query: String,
    /// `zstream_replans_total{query}`.
    replans: Counter,
    /// Decision awaiting post-hoc actuals: back-filled from the next
    /// measurement window that closes.
    pending_actuals: Option<u64>,
}

/// An [`Engine`] wrapped with the §5.3 adaptive controller.
#[derive(Debug)]
pub struct AdaptiveEngine {
    engine: Engine,
    config: AdaptiveConfig,
    /// Statistics the current plan was chosen under.
    current_stats: Statistics,
    /// The spec of the currently installed plan (re-priced under measured
    /// statistics to decide switches).
    current_spec: Option<PlanSpec>,
    last_snapshot: CounterSnapshot,
    rounds_since_check: u64,
    obs: Option<AdaptiveObs>,
}

impl AdaptiveEngine {
    /// Wraps an engine whose plan was built from `initial_spec` under
    /// `initial_stats`.
    pub fn new(
        engine: Engine,
        initial_spec: Option<PlanSpec>,
        initial_stats: Statistics,
        config: AdaptiveConfig,
    ) -> AdaptiveEngine {
        let (offered, admitted) = engine.class_counters();
        let last_snapshot = CounterSnapshot {
            offered: offered.to_vec(),
            admitted: admitted.to_vec(),
            watermark: engine.watermark(),
        };
        AdaptiveEngine {
            engine,
            config,
            current_stats: initial_stats,
            current_spec: initial_spec,
            last_snapshot,
            rounds_since_check: 0,
            obs: None,
        }
    }

    /// Attaches an observability hub: every replan from here on is
    /// recorded in `hub.decisions` (sampled statistics, per-candidate cost
    /// estimates, the chosen operator tree) and its post-hoc actuals are
    /// back-filled when the next measurement window closes. Also registers
    /// the `zstream_replans_total{query}` counter.
    pub fn attach_obs(&mut self, hub: Arc<Obs>, query: impl Into<String>) {
        let query = query.into();
        let replans =
            hub.metrics.counter("zstream_replans_total", zstream_obs::labels(&[("query", &query)]));
        self.obs = Some(AdaptiveObs { hub, query, replans, pending_actuals: None });
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Statistics the current plan was built under.
    pub fn current_stats(&self) -> &Statistics {
        &self.current_stats
    }

    /// Pushes a batch, running the adaptation check on round boundaries.
    pub fn push_batch(&mut self, events: &[EventRef]) -> Vec<Record> {
        let out = self.engine.push_batch(events);
        self.after_round();
        out
    }

    /// Pushes a **columnar** batch through the vectorized intake
    /// ([`Engine::push_columns`]), running the same round-boundary
    /// adaptation check as [`AdaptiveEngine::push_batch`]. Adaptive queries
    /// therefore ride the columnar data plane: statistics sampling, drift
    /// detection and plan switching are identical across both paths.
    pub fn push_columns(&mut self, batch: &EventBatch) -> Vec<Record> {
        let out = self.engine.push_columns(batch);
        self.after_round();
        out
    }

    /// Round-boundary bookkeeping shared by the intake paths: every push is
    /// one engine round; every `check_interval` rounds, re-measure and maybe
    /// switch plans (§5.3 switches happen only on round boundaries).
    fn after_round(&mut self) {
        self.rounds_since_check += 1;
        if self.rounds_since_check >= self.config.check_interval {
            self.rounds_since_check = 0;
            // Adaptation failures (e.g. degenerate statistics) must never
            // break query processing; skip the check instead.
            let _ = self.maybe_adapt();
        }
    }

    /// Flushes buffered events.
    pub fn flush(&mut self) -> Vec<Record> {
        self.engine.flush()
    }

    /// Measures statistics, re-plans if they drifted, installs the new plan
    /// if it is predicted to be sufficiently better. Returns whether a
    /// switch happened.
    pub fn maybe_adapt(&mut self) -> Result<bool, CoreError> {
        let Some(measured) = self.measure() else {
            return Ok(false);
        };
        let aq = self.engine.analyzed().clone();
        // A closed measurement window is the post-hoc truth for the
        // previous decision, drift or not — back-fill before deciding.
        self.backfill_actuals(&aq, &measured);
        let drift = self.current_stats.max_relative_change(&measured);
        if drift <= self.config.error_threshold {
            return Ok(false);
        }
        let new_spec = search_optimal(&aq, &measured)?;
        self.engine.metrics_mut().replans += 1;
        // Compare both plans under the *measured* statistics.
        let current_spec_cost = match &self.current_spec {
            Some(spec) => plan_cost(&aq, &measured, spec),
            None => f64::INFINITY,
        };
        let switched = current_spec_cost / new_spec.est_cost >= self.config.improvement_threshold;
        self.record_decision(&aq, &measured, drift, current_spec_cost, &new_spec, switched);
        if !switched {
            self.current_stats = measured;
            return Ok(false);
        }
        let plan = PhysicalPlan::from_spec(&aq, &new_spec, self.engine.plan().config.clone())?;
        self.engine.install_plan(plan);
        self.current_spec = Some(new_spec);
        self.current_stats = measured;
        Ok(true)
    }

    /// Closes the estimate-vs-actual loop without waiting for the next
    /// check interval: measures once more and back-fills the latest
    /// decision's actuals. Call at end of stream (a decision taken in the
    /// final window would otherwise never see its observed statistics).
    pub fn finalize_observations(&mut self) {
        if let Some(measured) = self.measure() {
            let aq = self.engine.analyzed().clone();
            self.backfill_actuals(&aq, &measured);
        }
    }

    /// Back-fills the pending decision's post-hoc observed statistics.
    fn backfill_actuals(&mut self, aq: &AnalyzedQuery, measured: &Statistics) {
        if let Some(obs) = &mut self.obs {
            if let Some(seq) = obs.pending_actuals.take() {
                obs.hub.decisions.record_actuals(seq, stat_series(aq, measured));
            }
        }
    }

    /// Records one replan in the decision log (and the trace ring) and
    /// arms the post-hoc actuals back-fill.
    fn record_decision(
        &mut self,
        aq: &AnalyzedQuery,
        measured: &Statistics,
        drift: f64,
        current_cost: f64,
        new_spec: &PlanSpec,
        switched: bool,
    ) {
        let Some(obs) = &mut self.obs else { return };
        obs.replans.inc();
        let incumbent = match &self.current_spec {
            Some(spec) => spec.describe(aq),
            None => "(none)".to_string(),
        };
        let proposed = new_spec.describe(aq);
        let at = self.engine.watermark();
        let seq = obs.hub.decisions.record(ReplanDecision {
            seq: 0, // assigned by the log
            query: obs.query.clone(),
            at,
            drift,
            measured: stat_series(aq, measured),
            candidates: vec![
                PlanCandidate { plan: incumbent, est_cost: current_cost, chosen: !switched },
                PlanCandidate {
                    plan: proposed.clone(),
                    est_cost: new_spec.est_cost,
                    chosen: switched,
                },
            ],
            switched,
            actuals: None,
        });
        obs.pending_actuals = Some(seq);
        obs.hub.trace.emit(
            at,
            None,
            Some(&obs.query),
            TraceKind::Replan,
            format!("switched={switched} drift={drift:.3} plan={proposed}"),
        );
    }

    /// Windowed statistics measurement: rates and single-class
    /// selectivities from intake counter deltas, multi-class predicate
    /// selectivities from sampled leaf-buffer event pairs.
    fn measure(&mut self) -> Option<Statistics> {
        let aq = self.engine.analyzed().clone();
        let n = aq.num_classes();
        let (offered, admitted) = {
            let (o, a) = self.engine.class_counters();
            (o.to_vec(), a.to_vec())
        };
        let watermark = self.engine.watermark();
        let dt = watermark.saturating_sub(self.last_snapshot.watermark);
        if dt == 0 {
            return None;
        }
        let mut stats = Statistics::uniform(n, aq.multi_preds.len(), aq.window);
        for c in 0..n {
            let d_off = offered[c] - self.last_snapshot.offered.get(c).copied().unwrap_or(0);
            let d_adm = admitted[c] - self.last_snapshot.admitted.get(c).copied().unwrap_or(0);
            // The engine counts offered per class; the raw class rate after
            // admission over the window:
            stats = stats
                .with_rate(c, d_off as f64 / dt as f64)
                .with_single_sel(c, if d_off == 0 { 1.0 } else { d_adm as f64 / d_off as f64 });
        }
        for (i, p) in aq.multi_preds.iter().enumerate() {
            if let Some(sel) = self.sample_pred_selectivity(p.mask, &p.expr) {
                stats = stats.with_pred_sel(i, sel);
            }
        }
        self.last_snapshot = CounterSnapshot { offered, admitted, watermark };
        Some(stats)
    }

    /// Estimates one predicate's selectivity by evaluating it on sampled
    /// event combinations from the referenced classes' leaf buffers.
    fn sample_pred_selectivity(&self, mask: u64, expr: &zstream_lang::TypedExpr) -> Option<f64> {
        let classes: Vec<usize> = (0..64).filter(|c| mask & (1u64 << c) != 0).collect();
        if classes.is_empty() || classes.len() > 2 {
            return None;
        }
        let plan = self.engine.plan();
        let bufs: Vec<&crate::physical::buffer::Buffer> =
            classes.iter().map(|c| &plan.nodes[plan.leaf_of_class[*c]].buf).collect();
        if bufs.iter().any(|b| b.is_empty()) {
            return None;
        }
        struct SampleBinding<'a> {
            classes: &'a [usize],
            events: Vec<&'a EventRef>,
        }
        impl EventBinding for SampleBinding<'_> {
            fn event(&self, class: usize) -> Option<&EventRef> {
                self.classes.iter().position(|c| *c == class).map(|i| self.events[i])
            }
            fn closure(&self, class: usize) -> &[EventRef] {
                match self.event(class) {
                    Some(e) => std::slice::from_ref(e),
                    None => &[],
                }
            }
        }
        let mut tried = 0usize;
        let mut passed = 0usize;
        // Deterministic stride sampling over the cross product.
        let k = self.config.sample_pairs;
        for s in 0..k {
            let events: Vec<&EventRef> = bufs
                .iter()
                .enumerate()
                .filter_map(|(bi, b)| b.get(sample_index(s, bi, b.len())).slot(0).as_one())
                .collect();
            if events.len() != bufs.len() {
                continue;
            }
            let binding = SampleBinding { classes: &classes, events };
            tried += 1;
            if matches!(expr.eval(&binding), Ok(zstream_events::Value::Bool(true))) {
                passed += 1;
            }
        }
        (tried > 0).then(|| (passed as f64 / tried as f64).clamp(0.001, 1.0))
    }
}

/// The `s`-th sampled index into buffer `bi` of length `len`.
///
/// Strides through the buffer with a per-buffer stride made **coprime** to
/// `len`, so consecutive samples visit every index before repeating (a full
/// cycle of Z/len). The naive `(s * (bi * 7 + 3)) % len` strides by a fixed
/// constant: whenever `len` divides the stride (any length-3 buffer for
/// `bi = 0`, length-10 for `bi = 1`, …) it degenerates to sampling index 0
/// only, silently biasing the multi-class selectivity estimate toward
/// whatever single pair sits at the buffer heads.
/// Renders statistics as the decision log's generic named series:
/// `rate.<class>` and `sel.<class>` per pattern class, `pred.<i>` per
/// multi-class predicate.
fn stat_series(aq: &AnalyzedQuery, stats: &Statistics) -> StatSeries {
    let mut out = Vec::with_capacity(2 * aq.num_classes() + aq.multi_preds.len());
    for (c, class) in aq.classes.iter().enumerate() {
        out.push((format!("rate.{}", class.name), stats.rate(c)));
        out.push((format!("sel.{}", class.name), stats.single_sel(c)));
    }
    for i in 0..aq.multi_preds.len() {
        out.push((format!("pred.{i}"), stats.pred_sel(i)));
    }
    out
}

fn sample_index(s: usize, bi: usize, len: usize) -> usize {
    if len <= 1 {
        return 0;
    }
    (s * coprime_stride(bi * 7 + 3, len)) % len
}

/// The smallest value ≥ `base` (mod-adjusted into `1..`) coprime to `len`.
/// Terminates because `len + 1` is always coprime to `len`.
fn coprime_stride(base: usize, len: usize) -> usize {
    let mut stride = base % len;
    if stride == 0 {
        stride = 1;
    }
    while gcd(stride, len) != 1 {
        stride += 1;
    }
    stride
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Regression: the degenerate lengths where the old fixed-stride sampler
    /// collapsed to index 0 (len divides the stride) now cycle through every
    /// index.
    #[test]
    fn stride_sampler_covers_degenerate_lengths() {
        for (bi, len) in [(0usize, 3usize), (1, 10), (0, 1), (0, 9), (1, 17), (2, 2)] {
            let seen: BTreeSet<usize> = (0..len.max(1)).map(|s| sample_index(s, bi, len)).collect();
            assert_eq!(
                seen.len(),
                len.max(1),
                "bi={bi} len={len}: {len} samples must cover all {len} indices, got {seen:?}"
            );
            assert!(seen.iter().all(|i| *i < len.max(1)), "indices in range");
        }
    }

    /// The old formula's failure mode, pinned: stride 3 over a length-3
    /// buffer only ever sampled index 0.
    #[test]
    fn old_formula_was_degenerate_new_one_is_not() {
        let old: BTreeSet<usize> = (0..64).map(|s| (s * 3) % 3).collect();
        assert_eq!(old.len(), 1, "the bug this guards against");
        let new: BTreeSet<usize> = (0..64).map(|s| sample_index(s, 0, 3)).collect();
        assert_eq!(new.len(), 3);
    }

    #[test]
    fn strides_are_coprime_to_length() {
        for len in 2usize..40 {
            for base in 1usize..30 {
                let stride = coprime_stride(base, len);
                assert_eq!(gcd(stride, len), 1, "base={base} len={len} stride={stride}");
            }
        }
    }
}
