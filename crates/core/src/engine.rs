//! The batch-iterator evaluation engine (§4.3).
//!
//! The engine accumulates primitive events into leaf buffers during **idle
//! rounds** and runs **assembly rounds** only when the pattern's trigger
//! (final) event class has at least one unconsumed instance:
//!
//! 1. a batch of primitive events is routed into leaf buffers (single-class
//!    predicates applied at intake — the §4.1 push-down),
//! 2. if no trigger-class instance is waiting, keep accumulating,
//! 3. otherwise compute the **earliest allowed timestamp** (EAT): the
//!    earliest unconsumed end-timestamp among trigger buffers minus the
//!    window, and push it down to every buffer,
//! 4. assemble events bottom-up, materializing intermediate results in node
//!    buffers and emitting complete composites at the root.

use std::collections::HashMap;
use std::sync::Arc;

use zstream_events::kernel::{filter_cmp, filter_str_eq, Bitmap, CmpOp};
use zstream_events::{
    EventBatch, EventRef, HashableValue, Record, Snapshot, SnapshotError, SnapshotReader,
    SnapshotResult, SnapshotWriter, Sym, Ts, Value,
};
use zstream_lang::{AnalyzedQuery, BinOp, ClassId, EventBinding, TypedExpr};

use crate::metrics::EngineMetrics;
use crate::obs::EngineObs;
use crate::physical::plan::PhysicalPlan;

/// Binding of a single event to a single class (intake predicates).
struct OneClassBinding<'a> {
    class: ClassId,
    event: &'a EventRef,
}

impl EventBinding for OneClassBinding<'_> {
    fn event(&self, class: ClassId) -> Option<&EventRef> {
        (class == self.class).then_some(self.event)
    }

    fn closure(&self, class: ClassId) -> &[EventRef] {
        if class == self.class {
            std::slice::from_ref(self.event)
        } else {
            &[]
        }
    }
}

/// One intake predicate compiled for column-wise evaluation. The compiled
/// forms are *exactly* equivalent to evaluating the original [`TypedExpr`]
/// per event — they only skip the expression-tree walk.
#[derive(Debug, Clone)]
enum IntakePred {
    /// `Attr = 'lit'` over a string column: a symbol-id compare per row.
    StrEq {
        /// Field (column) index within the class schema.
        field: usize,
        /// Interned literal.
        sym: Sym,
    },
    /// `Attr op lit` (either operand order, op flipped accordingly): one
    /// column read plus a [`Value::compare`] per row.
    CmpLit {
        /// Field (column) index within the class schema.
        field: usize,
        /// Comparison operator (Eq/Ne/Lt/Le/Gt/Ge).
        op: BinOp,
        /// Literal operand.
        lit: Value,
    },
    /// Anything else: evaluate the expression per row against a one-class
    /// binding (the same code path the per-event intake uses).
    General(TypedExpr),
}

impl IntakePred {
    /// Compiles one single-class intake expression.
    fn compile(expr: &TypedExpr) -> IntakePred {
        if let TypedExpr::Binary(op, l, r) = expr {
            let flipped = |op: BinOp| match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            };
            let lit_cmp = |field: usize, op: BinOp, lit: &Value| match (op, lit) {
                (BinOp::Eq, Value::Str(sym)) => IntakePred::StrEq { field, sym: *sym },
                (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _) => {
                    IntakePred::CmpLit { field, op, lit: *lit }
                }
                _ => IntakePred::General(expr.clone()),
            };
            match (l.as_ref(), r.as_ref()) {
                (TypedExpr::Attr { field, .. }, TypedExpr::Lit(v)) => {
                    return lit_cmp(*field, *op, v);
                }
                (TypedExpr::Lit(v), TypedExpr::Attr { field, .. }) => {
                    return lit_cmp(*field, flipped(*op), v);
                }
                _ => {}
            }
        }
        IntakePred::General(expr.clone())
    }

    /// True when the original expression would evaluate to `Bool(true)` for
    /// `row` of `batch` bound to `class`.
    #[inline]
    fn passes(&self, batch: &EventBatch, row: usize, class: ClassId) -> bool {
        match self {
            IntakePred::StrEq { field, sym } => batch.column(*field).sym_at(row) == Some(*sym),
            IntakePred::CmpLit { field, op, lit } => {
                cmp_passes(*op, batch.column(*field).value(row), lit)
            }
            IntakePred::General(expr) => {
                let event = batch.event(row);
                let binding = OneClassBinding { class, event: &event };
                matches!(expr.eval(&binding), Ok(Value::Bool(true)))
            }
        }
    }

    /// Dedup key for column-kernel predicates: two intake predicates with
    /// equal keys decide identically on every row of any batch (`StrEq`
    /// compares interned ids; `CmpLit` literals canonicalize via
    /// [`Value::hash_key`], which agrees exactly with [`Value::loose_eq`]).
    /// `General` predicates never share (their semantics depend on the
    /// bound class).
    fn kernel_key(&self) -> Option<(u8, usize, HashableValue)> {
        match self {
            IntakePred::StrEq { field, sym } => Some((0, *field, HashableValue::Str(*sym))),
            IntakePred::CmpLit { field, op, lit } => {
                let tag = match op {
                    BinOp::Eq => 1,
                    BinOp::Ne => 2,
                    BinOp::Lt => 3,
                    BinOp::Le => 4,
                    BinOp::Gt => 5,
                    BinOp::Ge => 6,
                    _ => return None,
                };
                Some((tag, *field, lit.hash_key()))
            }
            IntakePred::General(_) => None,
        }
    }

    /// Evaluates a column-kernel predicate over the whole column into `out`.
    /// Only called for `StrEq`/`CmpLit` (the variants with a
    /// [`IntakePred::kernel_key`]).
    fn eval_column(&self, batch: &EventBatch, out: &mut Bitmap) {
        match self {
            IntakePred::StrEq { field, sym } => filter_str_eq(batch.column(*field), *sym, out),
            IntakePred::CmpLit { field, op, lit } => {
                filter_cmp(batch.column(*field), kernel_op(*op), lit, out);
            }
            IntakePred::General(_) => unreachable!("general predicates evaluate row-wise"),
        }
    }
}

/// Maps the language's comparison operators onto the kernel layer's
/// (`crates/events` sits below the language and defines its own enum).
fn kernel_op(op: BinOp) -> CmpOp {
    match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        other => unreachable!("compiled ops are comparisons, got {other:?}"),
    }
}

/// How [`Engine::push_columns`] / [`Engine::push_rows`] evaluate intake
/// predicates. The two paths are semantically identical (the differential
/// suite pins this); the knob exists for tests and ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntakeMode {
    /// Whole-column kernels for full batches and dense selections;
    /// row-at-a-time for sparse selections (partitioned intake routes one
    /// small selection per key — scanning the full column per key would be
    /// O(batch × keys)).
    #[default]
    Auto,
    /// Always evaluate via column kernels into bitmaps.
    Kernel,
    /// Always evaluate row-at-a-time (the pre-kernel path).
    Rows,
}

/// Reusable bitmap scratch for vectorized intake (satellite of the kernel
/// layer: Phase 1 used to allocate a fresh `Vec<u32>` per predicate per
/// class per batch).
///
/// **Invariant:** contents are meaningful only *within* one
/// `route_columns` call — between calls the bitmaps hold stale bits of the
/// previous batch, so every use inside the call must start from
/// `Bitmap::reset` (or a full overwrite by a filter kernel), never read
/// carried-over state. `pred_done` is what makes the per-batch predicate
/// cache sound: it is cleared at the top of every kernel-path call.
#[derive(Debug, Default)]
struct IntakeScratch {
    /// Per-class accumulator: AND of the class's predicate bitmaps over the
    /// input rows.
    acc: Bitmap,
    /// Union of all class accumulators — `events_admitted` is its popcount.
    union: Bitmap,
    /// One cached bitmap per distinct column predicate (indexed like
    /// `Engine::uniq_preds`), evaluated lazily per batch.
    pred: Vec<Bitmap>,
    /// Which `pred` entries are valid for the batch currently being routed.
    pred_done: Vec<bool>,
}

/// Comparison semantics identical to `TypedExpr::Binary(op, Attr, Lit)`
/// evaluation: `Eq`/`Ne` via loose equality, orderings via exact
/// [`Value::compare`]; incomparable types fail closed.
#[inline]
fn cmp_passes(op: BinOp, v: Value, lit: &Value) -> bool {
    use std::cmp::Ordering;
    match op {
        BinOp::Eq => v.loose_eq(lit),
        BinOp::Ne => !v.loose_eq(lit),
        _ => match v.compare(lit) {
            Ok(ord) => match op {
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!("compiled ops are comparisons"),
            },
            Err(_) => false,
        },
    }
}

/// A running query: a physical plan plus routing and round bookkeeping.
#[derive(Debug)]
pub struct Engine {
    // zlint::allow(snapshot, "restore_snapshot receives the analyzed query from the caller; the checkpoint carries only round state")
    aq: Arc<AnalyzedQuery>,
    plan: PhysicalPlan,
    /// Per-class intake predicates: analyzed single-class predicates plus
    /// any route-by-field equality added by the builder.
    // zlint::allow(snapshot, "restore_snapshot receives the intake predicates from the caller; not checkpoint state")
    intake: Vec<Vec<TypedExpr>>,
    /// The same predicates compiled for column-wise evaluation.
    // zlint::allow(snapshot, "derived: recompiled from `intake` on construction and restore")
    intake_compiled: Vec<Vec<IntakePred>>,
    /// Distinct column-kernel predicates across all classes: each is
    /// evaluated **once per batch** into a bitmap, no matter how many
    /// classes share it.
    // zlint::allow(snapshot, "derived: recompiled from `intake` on construction and restore")
    uniq_preds: Vec<IntakePred>,
    /// Per class, per predicate: index into `uniq_preds` for column-kernel
    /// predicates, `None` for row-wise (`General`) ones.
    // zlint::allow(snapshot, "derived: recompiled from `intake` on construction and restore")
    col_pred_of: Vec<Vec<Option<usize>>>,
    /// Reusable bitmap scratch (see [`IntakeScratch`] for the invariant).
    // zlint::allow(snapshot, "scratch space: rebuilt empty, repopulated per batch")
    scratch: IntakeScratch,
    // zlint::allow(snapshot, "configuration re-stamped by the caller after restore, not checkpoint state")
    intake_mode: IntakeMode,
    /// Per-class interned schema name (intake schema matching is an integer
    /// compare).
    // zlint::allow(snapshot, "derived: re-interned from the analyzed query's class schemas")
    class_schema: Vec<Sym>,
    /// Events buffered until a full batch is formed (push-one API).
    pending: Vec<EventRef>,
    // zlint::allow(snapshot, "restore_snapshot receives the batch size from the caller; not checkpoint state")
    batch_size: usize,
    watermark: Ts,
    metrics: EngineMetrics,
    /// Per-class counters for the adaptive statistics sampler (§5.3).
    offered: Vec<u64>,
    admitted: Vec<u64>,
    /// Observability instruments; `None` (the default) records nothing.
    // zlint::allow(snapshot, "instruments are process-local handles, re-attached via set_obs after restore")
    obs: Option<EngineObs>,
}

impl Engine {
    /// Creates an engine over an analyzed query, plan, per-class intake
    /// predicates and batch size.
    pub fn new(
        aq: Arc<AnalyzedQuery>,
        plan: PhysicalPlan,
        intake: Vec<Vec<TypedExpr>>,
        batch_size: usize,
    ) -> Engine {
        assert!(batch_size >= 1);
        let n = aq.num_classes();
        let intake_compiled: Vec<Vec<IntakePred>> =
            intake.iter().map(|preds| preds.iter().map(IntakePred::compile).collect()).collect();
        // Dedup column-kernel predicates across classes: classes routed by
        // the same field share one bitmap evaluation per batch.
        let mut uniq_preds: Vec<IntakePred> = Vec::new();
        let mut seen: HashMap<(u8, usize, HashableValue), usize> = HashMap::new();
        let col_pred_of: Vec<Vec<Option<usize>>> = intake_compiled
            .iter()
            .map(|preds| {
                preds
                    .iter()
                    .map(|p| {
                        p.kernel_key().map(|key| {
                            *seen.entry(key).or_insert_with(|| {
                                uniq_preds.push(p.clone());
                                uniq_preds.len() - 1
                            })
                        })
                    })
                    .collect()
            })
            .collect();
        let scratch = IntakeScratch {
            pred: vec![Bitmap::new(); uniq_preds.len()],
            pred_done: vec![false; uniq_preds.len()],
            ..IntakeScratch::default()
        };
        let class_schema = aq.classes.iter().map(|c| c.schema.name_sym()).collect();
        Engine {
            aq,
            plan,
            intake,
            intake_compiled,
            uniq_preds,
            col_pred_of,
            scratch,
            intake_mode: IntakeMode::default(),
            class_schema,
            pending: Vec::with_capacity(batch_size),
            batch_size,
            watermark: 0,
            metrics: EngineMetrics::default(),
            offered: vec![0; n],
            admitted: vec![0; n],
            obs: None,
        }
    }

    /// The analyzed query.
    pub fn analyzed(&self) -> &Arc<AnalyzedQuery> {
        &self.aq
    }

    /// The current physical plan.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// Metrics snapshot. Process-global values (symbol-table stats, the
    /// reorder peak) are **not** stamped here — they belong to the scrape
    /// layer (`zstream_obs` gauges / the runtime's report), not to
    /// per-engine counters, so merging engines never double-counts them.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// Attaches observability instruments. Per-query counters, the
    /// assembly-round histogram and batch-level trace events flow into
    /// the handles from this point on.
    pub fn set_obs(&mut self, obs: EngineObs) {
        self.obs = Some(obs);
    }

    /// The attached instruments, if any.
    pub fn obs(&self) -> Option<&EngineObs> {
        self.obs.as_ref()
    }

    /// Mutable access to metrics (the adaptive controller records replans).
    pub fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    /// Overrides the intake-path choice (default [`IntakeMode::Auto`]).
    /// `Kernel` / `Rows` pin columnar intake to one path — used by the
    /// differential tests (row path as oracle) and ablation benchmarks.
    pub fn set_intake_mode(&mut self, mode: IntakeMode) {
        self.intake_mode = mode;
    }

    /// The configured intake-path choice.
    pub fn intake_mode(&self) -> IntakeMode {
        self.intake_mode
    }

    /// Latest event timestamp seen.
    pub fn watermark(&self) -> Ts {
        self.watermark
    }

    /// Per-class (offered, admitted) intake counters since engine start.
    pub fn class_counters(&self) -> (&[u64], &[u64]) {
        (&self.offered, &self.admitted)
    }

    /// Pushes a single event; runs a round when a full batch accumulated.
    /// Returns any matches produced.
    pub fn push(&mut self, event: EventRef) -> Vec<Record> {
        self.pending.push(event);
        if self.pending.len() >= self.batch_size {
            let batch = std::mem::take(&mut self.pending);
            self.process_batch(&batch)
        } else {
            Vec::new()
        }
    }

    /// Routes a whole batch and runs one round.
    pub fn push_batch(&mut self, events: &[EventRef]) -> Vec<Record> {
        if !self.pending.is_empty() {
            let mut batch = std::mem::take(&mut self.pending);
            batch.extend_from_slice(events);
            self.process_batch(&batch)
        } else {
            self.process_batch(events)
        }
    }

    /// Routes a whole **columnar** batch and runs one round — the
    /// vectorized intake path. Single-class predicates (§4.1 push-down)
    /// evaluate column-wise over the batch, and only the surviving rows
    /// materialize leaf records; admitted/offered accounting, watermark and
    /// round semantics are identical to [`Engine::push_batch`] over the same
    /// rows.
    pub fn push_columns(&mut self, batch: &EventBatch) -> Vec<Record> {
        let pending = std::mem::take(&mut self.pending);
        for e in &pending {
            self.route(e);
        }
        self.route_columns(batch, None);
        self.round()
    }

    /// Selection-vector variant of [`Engine::push_columns`]: routes only the
    /// given (ascending) `rows` of the shared batch and runs one round.
    /// This is the shard/partition form of vectorized intake — the batch is
    /// shared storage, never copied, and the handles materialized for
    /// surviving rows point into it (identities preserved). Semantics are
    /// identical to `push_columns` over a batch of exactly the selected
    /// rows.
    pub fn push_rows(&mut self, batch: &EventBatch, rows: &[u32]) -> Vec<Record> {
        let pending = std::mem::take(&mut self.pending);
        for e in &pending {
            self.route(e);
        }
        self.route_columns(batch, Some(rows));
        self.round()
    }

    /// Flushes any buffered events and forces a final assembly round.
    pub fn flush(&mut self) -> Vec<Record> {
        let batch = std::mem::take(&mut self.pending);
        self.process_batch(&batch)
    }

    fn process_batch(&mut self, events: &[EventRef]) -> Vec<Record> {
        for e in events {
            self.route(e);
        }
        self.round()
    }

    /// Column-wise intake of one batch (§4.1 push-down over columns).
    /// `input` restricts intake to those (ascending) rows of the batch;
    /// `None` means every row.
    ///
    /// Dense inputs take the **kernel path**: each distinct compiled
    /// predicate evaluates once over its whole column into a bitmap, class
    /// bitmaps AND together, and only then do survivors materialize. Sparse
    /// selections fall back to row-at-a-time narrowing — partitioned intake
    /// routes one small per-key selection at a time through this function,
    /// and scanning full columns per key would cost O(batch × keys).
    fn route_columns(&mut self, batch: &EventBatch, input: Option<&[u32]>) {
        let n = batch.len();
        let n_input = input.map_or(n, <[u32]>::len);
        if n_input == 0 {
            return;
        }
        let ts_col = batch.ts_column();
        let (first, last) = match input {
            None => (0usize, n - 1),
            Some(rows) => (rows[0] as usize, rows[rows.len() - 1] as usize),
        };
        // Hard check, not a debug assert: arrival-order (unsorted) batches
        // are an ordinary product of the events API now and must never feed
        // an engine directly — they silently corrupt window semantics. The
        // flag is O(1); a reorder stage upstream is the supported path.
        assert!(
            batch.is_sorted() && ts_col[first] >= self.watermark,
            "engine input must be time-ordered: place a reorder stage \
             (events::ColumnarReorder / RuntimeBuilder::slack) in front of \
             disordered streams"
        );
        debug_assert!(
            input.is_none_or(|rows| rows.windows(2).all(|w| w[0] < w[1])),
            "selection must ascend"
        );
        self.metrics.events_in += n_input as u64;
        self.watermark = self.watermark.max(ts_col[last]);
        let dense = match self.intake_mode {
            // Kernels pay O(batch) per evaluated column; worth it when the
            // selection covers at least a quarter of the batch.
            IntakeMode::Auto => input.is_none_or(|rows| rows.len() * 4 >= n),
            IntakeMode::Kernel => true,
            IntakeMode::Rows => false,
        };
        if dense {
            self.route_columns_kernel(batch, input);
        } else {
            self.route_columns_rows(batch, input);
        }
    }

    /// Kernel intake: bitmap evaluation per distinct predicate, AND per
    /// class, union popcount for `events_admitted`, set-bit materialization.
    /// Produces exactly the per-event path's admissions in the same
    /// class-then-row order.
    fn route_columns_kernel(&mut self, batch: &EventBatch, input: Option<&[u32]>) {
        let n = batch.len();
        let n_input = input.map_or(n, <[u32]>::len);
        let batch_schema = batch.schema().name_sym();
        let (mut rows_evaluated, mut fallback_rows) = (0u64, 0u64);
        // Disjoint field borrows: predicates + scratch stay borrowed across
        // the loop while `plan`/counters are touched independently.
        let scratch = &mut self.scratch;
        let intake_compiled = &self.intake_compiled;
        let uniq_preds = &self.uniq_preds;
        let col_pred_of = &self.col_pred_of;
        scratch.pred_done.iter_mut().for_each(|d| *d = false);
        scratch.union.reset(n, false);
        for c in 0..self.aq.num_classes() {
            if self.class_schema[c] != batch_schema {
                continue;
            }
            self.offered[c] += n_input as u64;
            match input {
                None => scratch.acc.reset(n, true),
                Some(rows) => {
                    scratch.acc.reset(n, false);
                    scratch.acc.set_rows(rows);
                }
            }
            for (pi, pred) in intake_compiled[c].iter().enumerate() {
                if !scratch.acc.any() {
                    break;
                }
                match col_pred_of[c][pi] {
                    Some(u) => {
                        if !scratch.pred_done[u] {
                            uniq_preds[u].eval_column(batch, &mut scratch.pred[u]);
                            scratch.pred_done[u] = true;
                            rows_evaluated += n as u64;
                        }
                        scratch.acc.and(&scratch.pred[u]);
                    }
                    None => {
                        // General predicates stay row-wise, over surviving
                        // rows only.
                        fallback_rows += scratch.acc.count() as u64;
                        scratch.acc.retain(|row| pred.passes(batch, row, c));
                    }
                }
            }
            let admitted = scratch.acc.count() as u64;
            self.admitted[c] += admitted;
            scratch.union.or(&scratch.acc);
            let leaf = self.plan.leaf_of_class[c];
            for row in scratch.acc.ones() {
                self.plan.nodes[leaf].buf.push(Record::primitive(batch.event(row)));
            }
        }
        let admitted_delta = scratch.union.count() as u64;
        self.metrics.events_admitted += admitted_delta;
        if let Some(obs) = &self.obs {
            obs.admitted.add(admitted_delta);
            obs.kernel_rows_evaluated.add(rows_evaluated);
            obs.kernel_fallback_rows.add(fallback_rows);
        }
    }

    /// Row-at-a-time intake for sparse selections: narrows a `Vec<u32>`
    /// selection per class (no O(batch) scratch), then unions admissions
    /// via bitmap OR + popcount.
    fn route_columns_rows(&mut self, batch: &EventBatch, input: Option<&[u32]>) {
        let n = batch.len();
        let n_input = input.map_or(n, <[u32]>::len);
        let batch_schema = batch.schema().name_sym();
        // Phase 1: per matched class, narrow the input to its final
        // selection (`None` = the whole input survived every predicate).
        let mut class_sels: Vec<(usize, Option<Vec<u32>>)> = Vec::new();
        for c in 0..self.aq.num_classes() {
            if self.class_schema[c] != batch_schema {
                continue;
            }
            self.offered[c] += n_input as u64;
            let mut sel: Option<Vec<u32>> = None;
            for pred in &self.intake_compiled[c] {
                match (&mut sel, input) {
                    (Some(rows), _) => rows.retain(|r| pred.passes(batch, *r as usize, c)),
                    (None, None) => {
                        sel = Some(
                            (0..n as u32).filter(|r| pred.passes(batch, *r as usize, c)).collect(),
                        );
                    }
                    (None, Some(rows)) => {
                        sel = Some(
                            rows.iter()
                                .copied()
                                .filter(|r| pred.passes(batch, *r as usize, c))
                                .collect(),
                        );
                    }
                }
                if matches!(&sel, Some(rows) if rows.is_empty()) {
                    break;
                }
            }
            class_sels.push((c, sel));
        }
        // `events_admitted` counts input rows admitted into at least one
        // class: the whole input if any class kept everything, otherwise
        // the popcount of the OR of the per-class selections.
        let admitted_delta = if class_sels.iter().any(|(_, sel)| sel.is_none()) {
            n_input as u64
        } else {
            match class_sels.as_slice() {
                [] => 0,
                [(_, Some(rows))] => rows.len() as u64,
                many => {
                    let union = &mut self.scratch.union;
                    union.reset(n, false);
                    for (_, sel) in many {
                        union.set_rows(sel.as_deref().unwrap_or(&[]));
                    }
                    union.count() as u64
                }
            }
        };
        self.metrics.events_admitted += admitted_delta;
        if let Some(obs) = &self.obs {
            obs.admitted.add(admitted_delta);
            obs.kernel_fallback_rows.add(n_input as u64);
        }
        // Phase 2: materialize leaf records for the surviving rows, in the
        // same class-then-row order as the per-event path fills buffers.
        for (c, sel) in class_sels {
            let leaf = self.plan.leaf_of_class[c];
            let admit = |row: usize, this: &mut PhysicalPlan| {
                this.nodes[leaf].buf.push(Record::primitive(batch.event(row)));
            };
            match (sel, input) {
                (None, None) => {
                    self.admitted[c] += n as u64;
                    for row in 0..n {
                        admit(row, &mut self.plan);
                    }
                }
                (None, Some(rows)) => {
                    self.admitted[c] += rows.len() as u64;
                    for row in rows {
                        admit(*row as usize, &mut self.plan);
                    }
                }
                (Some(rows), _) => {
                    self.admitted[c] += rows.len() as u64;
                    for row in rows {
                        admit(row as usize, &mut self.plan);
                    }
                }
            }
        }
    }

    /// Routes one event to every class whose schema matches and whose
    /// intake predicates accept it (§4.1: single-class predicates prevent
    /// irrelevant events from entering leaf buffers).
    fn route(&mut self, event: &EventRef) {
        self.metrics.events_in += 1;
        debug_assert!(event.ts() >= self.watermark, "input must be time-ordered");
        self.watermark = self.watermark.max(event.ts());
        let mut admitted_any = false;
        let event_schema = event.schema().name_sym();
        for c in 0..self.aq.num_classes() {
            if self.class_schema[c] != event_schema {
                continue;
            }
            self.offered[c] += 1;
            let binding = OneClassBinding { class: c, event };
            if self.intake[c]
                .iter()
                .all(|p| matches!(p.eval(&binding), Ok(zstream_events::Value::Bool(true))))
            {
                self.admitted[c] += 1;
                admitted_any = true;
                let leaf = self.plan.leaf_of_class[c];
                self.plan.nodes[leaf].buf.push(Record::primitive(event.clone()));
            }
        }
        if admitted_any {
            self.metrics.events_admitted += 1;
        }
        if let Some(obs) = &self.obs {
            if admitted_any {
                obs.admitted.inc();
            }
            obs.kernel_fallback_rows.inc();
        }
    }

    /// One round: idle if no trigger instance is waiting, otherwise compute
    /// the EAT and assemble.
    fn round(&mut self) -> Vec<Record> {
        let Some(earliest) = self.earliest_trigger_end() else {
            self.metrics.idle_rounds += 1;
            return Vec::new();
        };
        let eat = earliest.saturating_sub(self.plan.window);
        self.metrics.assembly_rounds += 1;
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let out = self.plan.assemble(eat);
        self.metrics.matches_out += out.len() as u64;
        self.metrics.sample_memory(self.plan.total_bytes());
        if let (Some(obs), Some(start)) = (&self.obs, start) {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            obs.record_round(self.watermark, ns, out.len() as u64);
        }
        out
    }

    /// Earliest unconsumed end timestamp across trigger-class leaf buffers
    /// (the EAT base of §4.3).
    fn earliest_trigger_end(&self) -> Option<Ts> {
        self.plan
            .trigger_classes
            .iter()
            .filter_map(|c| {
                self.plan.nodes[self.plan.leaf_of_class[*c]].buf.earliest_unconsumed_end()
            })
            .min()
    }

    /// Canonical signature of an output record for result comparison: per
    /// pattern class, the identities (Arc pointers) of the bound events.
    /// Unbound classes yield empty lists; negated classes are always empty
    /// (NSEQ carries the negating event in its slot for guard evaluation,
    /// but it is bookkeeping, not part of the match — RETURN excludes it).
    pub fn record_signature(&self, rec: &Record) -> Vec<Vec<usize>> {
        let root = &self.plan.nodes[self.plan.root];
        let mut out = vec![Vec::new(); self.aq.num_classes()];
        for (slot_idx, class) in root.classes.iter().enumerate() {
            if self.aq.classes[*class].negated {
                continue;
            }
            out[*class] =
                rec.slot(slot_idx).events().iter().map(|e| e.identity() as usize).collect();
        }
        out
    }

    /// Formats an output record according to the query's RETURN clause.
    pub fn format_match(&self, rec: &Record) -> String {
        use std::fmt::Write;
        use zstream_lang::TypedReturn;
        let root = &self.plan.nodes[self.plan.root];
        let binding = crate::physical::binding::RecordBinding { rec, map: &root.map };
        let mut s = format!("[{}..{}]", rec.start_ts(), rec.end_ts());
        for r in &self.aq.returns {
            match r {
                TypedReturn::Class(c) => {
                    let ev = root
                        .map
                        .slot_of(*c)
                        .map(|p| rec.slot(p))
                        .map(|slot| match slot.events() {
                            [] => "—".to_string(),
                            [e] => e.to_string(),
                            group => format!("{} events", group.len()),
                        })
                        .unwrap_or_else(|| "—".to_string());
                    let _ = write!(s, " {}={}", self.aq.classes[*c].name, ev);
                }
                TypedReturn::Agg(func, c, field) => {
                    let expr = TypedExpr::Agg { func: *func, class: *c, field: *field };
                    let v = expr
                        .eval(&binding)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|_| "?".to_string());
                    let _ = write!(s, " {func}({})={v}", self.aq.classes[*c].name);
                }
            }
        }
        s
    }

    /// Replaces the physical plan, transplanting leaf buffers. Trigger-class
    /// cursors are preserved (already-consumed final events must not emit
    /// again); every other leaf is rewound so the new plan rebuilds its
    /// intermediate state from retained history — the §5.3 switch protocol.
    pub fn install_plan(&mut self, mut new_plan: PhysicalPlan) {
        let mut leaves = self.plan.take_leaf_buffers();
        for (class, buf) in &mut leaves {
            if !self.plan.trigger_classes.contains(class) {
                buf.rewind();
            }
        }
        new_plan.reset_for_switch(leaves);
        self.plan = new_plan;
        self.metrics.plan_switches += 1;
    }

    /// Rebuilds an engine from a [`Snapshot`] stream. `aq`, `plan` and
    /// `intake` must come from compiling the same query with the same plan
    /// configuration the snapshotted engine ran (checkpoints carry state,
    /// not code — the caller re-derives the plan and this injects the
    /// buffers, cursors, watermark and counters into it). Hash indexes are
    /// *not* snapshotted: they are derived state and re-sync incrementally
    /// from the restored buffers on the next probe.
    pub fn restore_snapshot(
        aq: Arc<AnalyzedQuery>,
        plan: PhysicalPlan,
        intake: Vec<Vec<TypedExpr>>,
        batch_size: usize,
        r: &mut SnapshotReader<'_>,
    ) -> SnapshotResult<Engine> {
        let mut engine = Engine::new(aq, plan, intake, batch_size);
        engine.watermark = r.u64()?;
        engine.metrics = EngineMetrics::restore_snapshot(r)?;
        let n_classes = engine.aq.num_classes();
        let read_counters = |r: &mut SnapshotReader<'_>| -> SnapshotResult<Vec<u64>> {
            let n = r.len()?;
            if n != n_classes {
                return Err(SnapshotError::Corrupt(format!(
                    "class counter arity {n} does not match query ({n_classes} classes)"
                )));
            }
            (0..n).map(|_| r.u64()).collect()
        };
        engine.offered = read_counters(r)?;
        engine.admitted = read_counters(r)?;
        let n_pending = r.len()?;
        engine.pending = (0..n_pending).map(|_| r.event()).collect::<SnapshotResult<_>>()?;
        let n_nodes = r.len()?;
        if n_nodes != engine.plan.nodes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n_nodes} plan nodes, compiled plan has {}",
                engine.plan.nodes.len()
            )));
        }
        for node in &mut engine.plan.nodes {
            let n_recs = r.len()?;
            for _ in 0..n_recs {
                node.buf.push(r.record()?);
            }
            let consumed = usize::try_from(r.u64()?)
                .map_err(|_| SnapshotError::Corrupt("consumed cursor exceeds usize".into()))?;
            if consumed > node.buf.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "consumed cursor {consumed} past buffer length {}",
                    node.buf.len()
                )));
            }
            node.buf.set_consumed(consumed);
        }
        Ok(engine)
    }
}

impl Snapshot for Engine {
    /// Serializes the evolving state: watermark, metrics, per-class intake
    /// counters, events pending a full batch, and every node buffer with
    /// its consumed cursor. The query, plan shape and intake predicates are
    /// **not** written — [`Engine::restore_snapshot`] re-derives them from
    /// the compiled query, which also makes the snapshot independent of
    /// process-local symbol ids and compiled-predicate layout.
    fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.watermark);
        self.metrics.write_snapshot(w);
        w.len(self.offered.len());
        for &c in &self.offered {
            w.u64(c);
        }
        w.len(self.admitted.len());
        for &c in &self.admitted {
            w.u64(c);
        }
        w.len(self.pending.len());
        for e in &self.pending {
            w.event(e);
        }
        w.len(self.plan.nodes.len());
        for node in &self.plan.nodes {
            w.len(node.buf.len());
            for rec in node.buf.iter() {
                w.record(rec);
            }
            w.len(node.buf.consumed());
        }
    }
}
