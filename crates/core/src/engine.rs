//! The batch-iterator evaluation engine (§4.3).
//!
//! The engine accumulates primitive events into leaf buffers during **idle
//! rounds** and runs **assembly rounds** only when the pattern's trigger
//! (final) event class has at least one unconsumed instance:
//!
//! 1. a batch of primitive events is routed into leaf buffers (single-class
//!    predicates applied at intake — the §4.1 push-down),
//! 2. if no trigger-class instance is waiting, keep accumulating,
//! 3. otherwise compute the **earliest allowed timestamp** (EAT): the
//!    earliest unconsumed end-timestamp among trigger buffers minus the
//!    window, and push it down to every buffer,
//! 4. assemble events bottom-up, materializing intermediate results in node
//!    buffers and emitting complete composites at the root.

use std::collections::HashMap;
use std::sync::Arc;

use zstream_events::kernel::Bitmap;
use zstream_events::{
    EventBatch, EventRef, HashableValue, Record, Snapshot, SnapshotError, SnapshotReader,
    SnapshotResult, SnapshotWriter, Sym, Ts,
};
use zstream_lang::{AnalyzedQuery, TypedExpr};

use crate::intake::{IntakePred, IntakeScratch, OneClassBinding, SharedPredIndex};
use crate::metrics::EngineMetrics;
use crate::obs::EngineObs;
use crate::physical::plan::PhysicalPlan;

pub use crate::intake::IntakeMode;

/// A running query: a physical plan plus routing and round bookkeeping.
#[derive(Debug)]
pub struct Engine {
    // zlint::allow(snapshot, "restore_snapshot receives the analyzed query from the caller; the checkpoint carries only round state")
    aq: Arc<AnalyzedQuery>,
    plan: PhysicalPlan,
    /// Per-class intake predicates: analyzed single-class predicates plus
    /// any route-by-field equality added by the builder.
    // zlint::allow(snapshot, "restore_snapshot receives the intake predicates from the caller; not checkpoint state")
    intake: Vec<Vec<TypedExpr>>,
    /// The same predicates compiled for column-wise evaluation.
    // zlint::allow(snapshot, "derived: recompiled from `intake` on construction and restore")
    intake_compiled: Vec<Vec<IntakePred>>,
    /// Distinct column-kernel predicates across all classes: each is
    /// evaluated **once per batch** into a bitmap, no matter how many
    /// classes share it.
    // zlint::allow(snapshot, "derived: recompiled from `intake` on construction and restore")
    uniq_preds: Vec<IntakePred>,
    /// Per class, per predicate: index into `uniq_preds` for column-kernel
    /// predicates, `None` for row-wise (`General`) ones.
    // zlint::allow(snapshot, "derived: recompiled from `intake` on construction and restore")
    col_pred_of: Vec<Vec<Option<usize>>>,
    /// Reusable bitmap scratch (see [`IntakeScratch`] for the invariant).
    // zlint::allow(snapshot, "scratch space: rebuilt empty, repopulated per batch")
    scratch: IntakeScratch,
    /// Subscription into a [`SharedPredIndex`]: for each entry of
    /// `uniq_preds`, the shared bitmap slot to read when the caller passes
    /// an index to [`Engine::push_columns_shared`] /
    /// [`Engine::push_rows_shared`]. `None` (the default) keeps predicate
    /// evaluation engine-local.
    // zlint::allow(snapshot, "wiring re-stamped by the caller after restore, not checkpoint state")
    shared_slots: Option<Arc<Vec<u32>>>,
    // zlint::allow(snapshot, "configuration re-stamped by the caller after restore, not checkpoint state")
    intake_mode: IntakeMode,
    /// Per-class interned schema name (intake schema matching is an integer
    /// compare).
    // zlint::allow(snapshot, "derived: re-interned from the analyzed query's class schemas")
    class_schema: Vec<Sym>,
    /// Events buffered until a full batch is formed (push-one API).
    pending: Vec<EventRef>,
    // zlint::allow(snapshot, "restore_snapshot receives the batch size from the caller; not checkpoint state")
    batch_size: usize,
    watermark: Ts,
    metrics: EngineMetrics,
    /// Per-class counters for the adaptive statistics sampler (§5.3).
    offered: Vec<u64>,
    admitted: Vec<u64>,
    /// Observability instruments; `None` (the default) records nothing.
    // zlint::allow(snapshot, "instruments are process-local handles, re-attached via set_obs after restore")
    obs: Option<EngineObs>,
}

impl Engine {
    /// Creates an engine over an analyzed query, plan, per-class intake
    /// predicates and batch size.
    pub fn new(
        aq: Arc<AnalyzedQuery>,
        plan: PhysicalPlan,
        intake: Vec<Vec<TypedExpr>>,
        batch_size: usize,
    ) -> Engine {
        assert!(batch_size >= 1);
        let n = aq.num_classes();
        let intake_compiled: Vec<Vec<IntakePred>> =
            intake.iter().map(|preds| preds.iter().map(IntakePred::compile).collect()).collect();
        // Dedup column-kernel predicates across classes: classes routed by
        // the same field share one bitmap evaluation per batch.
        let mut uniq_preds: Vec<IntakePred> = Vec::new();
        let mut seen: HashMap<(u8, usize, HashableValue), usize> = HashMap::new();
        let col_pred_of: Vec<Vec<Option<usize>>> = intake_compiled
            .iter()
            .map(|preds| {
                preds
                    .iter()
                    .map(|p| {
                        p.kernel_key().map(|key| {
                            *seen.entry(key).or_insert_with(|| {
                                uniq_preds.push(p.clone());
                                uniq_preds.len() - 1
                            })
                        })
                    })
                    .collect()
            })
            .collect();
        let scratch = IntakeScratch {
            pred: vec![Bitmap::new(); uniq_preds.len()],
            pred_done: vec![false; uniq_preds.len()],
            ..IntakeScratch::default()
        };
        let class_schema = aq.classes.iter().map(|c| c.schema.name_sym()).collect();
        Engine {
            aq,
            plan,
            intake,
            intake_compiled,
            uniq_preds,
            col_pred_of,
            scratch,
            shared_slots: None,
            intake_mode: IntakeMode::default(),
            class_schema,
            pending: Vec::with_capacity(batch_size),
            batch_size,
            watermark: 0,
            metrics: EngineMetrics::default(),
            offered: vec![0; n],
            admitted: vec![0; n],
            obs: None,
        }
    }

    /// The analyzed query.
    pub fn analyzed(&self) -> &Arc<AnalyzedQuery> {
        &self.aq
    }

    /// The current physical plan.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// Metrics snapshot. Process-global values (symbol-table stats, the
    /// reorder peak) are **not** stamped here — they belong to the scrape
    /// layer (`zstream_obs` gauges / the runtime's report), not to
    /// per-engine counters, so merging engines never double-counts them.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// Attaches observability instruments. Per-query counters, the
    /// assembly-round histogram and batch-level trace events flow into
    /// the handles from this point on.
    pub fn set_obs(&mut self, obs: EngineObs) {
        self.obs = Some(obs);
    }

    /// The attached instruments, if any.
    pub fn obs(&self) -> Option<&EngineObs> {
        self.obs.as_ref()
    }

    /// Mutable access to metrics (the adaptive controller records replans).
    pub fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    /// Overrides the intake-path choice (default [`IntakeMode::Auto`]).
    /// `Kernel` / `Rows` pin columnar intake to one path — used by the
    /// differential tests (row path as oracle) and ablation benchmarks.
    pub fn set_intake_mode(&mut self, mode: IntakeMode) {
        self.intake_mode = mode;
    }

    /// The configured intake-path choice.
    pub fn intake_mode(&self) -> IntakeMode {
        self.intake_mode
    }

    /// Subscribes this engine to a [`SharedPredIndex`]: `slots` must be the
    /// subscription returned by [`SharedPredIndex::register`] for this
    /// engine's intake predicates (one shared slot per distinct
    /// column-kernel predicate, in the engine's dedup order). From then on,
    /// the shared-aware push variants evaluate distinct predicates at most
    /// once per batch *across every subscribed engine* instead of once per
    /// engine.
    pub fn set_shared_slots(&mut self, slots: Arc<Vec<u32>>) {
        debug_assert_eq!(
            slots.len(),
            self.uniq_preds.len(),
            "subscription arity must match the engine's distinct kernel predicates"
        );
        self.shared_slots = Some(slots);
    }

    /// Latest event timestamp seen.
    pub fn watermark(&self) -> Ts {
        self.watermark
    }

    /// Per-class (offered, admitted) intake counters since engine start.
    pub fn class_counters(&self) -> (&[u64], &[u64]) {
        (&self.offered, &self.admitted)
    }

    /// Pushes a single event; runs a round when a full batch accumulated.
    /// Returns any matches produced.
    pub fn push(&mut self, event: EventRef) -> Vec<Record> {
        self.pending.push(event);
        if self.pending.len() >= self.batch_size {
            let batch = std::mem::take(&mut self.pending);
            self.process_batch(&batch)
        } else {
            Vec::new()
        }
    }

    /// Routes a whole batch and runs one round.
    pub fn push_batch(&mut self, events: &[EventRef]) -> Vec<Record> {
        if !self.pending.is_empty() {
            let mut batch = std::mem::take(&mut self.pending);
            batch.extend_from_slice(events);
            self.process_batch(&batch)
        } else {
            self.process_batch(events)
        }
    }

    /// Routes a whole **columnar** batch and runs one round — the
    /// vectorized intake path. Single-class predicates (§4.1 push-down)
    /// evaluate column-wise over the batch, and only the surviving rows
    /// materialize leaf records; admitted/offered accounting, watermark and
    /// round semantics are identical to [`Engine::push_batch`] over the same
    /// rows.
    pub fn push_columns(&mut self, batch: &EventBatch) -> Vec<Record> {
        self.push_columns_shared(batch, None)
    }

    /// [`Engine::push_columns`] with an optional [`SharedPredIndex`]:
    /// column predicates whose shared bitmap is already valid for this
    /// batch are reused instead of re-evaluated, and ones this engine
    /// evaluates become valid for later subscribers. Match output is
    /// byte-identical to the unshared path — only the evaluation count
    /// changes.
    pub fn push_columns_shared(
        &mut self,
        batch: &EventBatch,
        shared: Option<&mut SharedPredIndex>,
    ) -> Vec<Record> {
        let pending = std::mem::take(&mut self.pending);
        for e in &pending {
            self.route(e);
        }
        self.route_columns(batch, None, shared);
        self.round()
    }

    /// Selection-vector variant of [`Engine::push_columns`]: routes only the
    /// given (ascending) `rows` of the shared batch and runs one round.
    /// This is the shard/partition form of vectorized intake — the batch is
    /// shared storage, never copied, and the handles materialized for
    /// surviving rows point into it (identities preserved). Semantics are
    /// identical to `push_columns` over a batch of exactly the selected
    /// rows.
    pub fn push_rows(&mut self, batch: &EventBatch, rows: &[u32]) -> Vec<Record> {
        self.push_rows_shared(batch, rows, None)
    }

    /// [`Engine::push_rows`] with an optional [`SharedPredIndex`] (see
    /// [`Engine::push_columns_shared`]). Sparse selections fall back to
    /// row-at-a-time narrowing and never touch the index.
    pub fn push_rows_shared(
        &mut self,
        batch: &EventBatch,
        rows: &[u32],
        shared: Option<&mut SharedPredIndex>,
    ) -> Vec<Record> {
        let pending = std::mem::take(&mut self.pending);
        for e in &pending {
            self.route(e);
        }
        self.route_columns(batch, Some(rows), shared);
        self.round()
    }

    /// Flushes any buffered events and forces a final assembly round.
    pub fn flush(&mut self) -> Vec<Record> {
        let batch = std::mem::take(&mut self.pending);
        self.process_batch(&batch)
    }

    fn process_batch(&mut self, events: &[EventRef]) -> Vec<Record> {
        for e in events {
            self.route(e);
        }
        self.round()
    }

    /// Column-wise intake of one batch (§4.1 push-down over columns).
    /// `input` restricts intake to those (ascending) rows of the batch;
    /// `None` means every row.
    ///
    /// Dense inputs take the **kernel path**: each distinct compiled
    /// predicate evaluates once over its whole column into a bitmap, class
    /// bitmaps AND together, and only then do survivors materialize. Sparse
    /// selections fall back to row-at-a-time narrowing — partitioned intake
    /// routes one small per-key selection at a time through this function,
    /// and scanning full columns per key would cost O(batch × keys).
    fn route_columns(
        &mut self,
        batch: &EventBatch,
        input: Option<&[u32]>,
        shared: Option<&mut SharedPredIndex>,
    ) {
        let n = batch.len();
        let n_input = input.map_or(n, <[u32]>::len);
        if n_input == 0 {
            return;
        }
        let ts_col = batch.ts_column();
        let (first, last) = match input {
            None => (0usize, n - 1),
            Some(rows) => (rows[0] as usize, rows[rows.len() - 1] as usize),
        };
        // Hard check, not a debug assert: arrival-order (unsorted) batches
        // are an ordinary product of the events API now and must never feed
        // an engine directly — they silently corrupt window semantics. The
        // flag is O(1); a reorder stage upstream is the supported path.
        assert!(
            batch.is_sorted() && ts_col[first] >= self.watermark,
            "engine input must be time-ordered: place a reorder stage \
             (events::ColumnarReorder / RuntimeBuilder::slack) in front of \
             disordered streams"
        );
        debug_assert!(
            input.is_none_or(|rows| rows.windows(2).all(|w| w[0] < w[1])),
            "selection must ascend"
        );
        self.metrics.events_in += n_input as u64;
        self.watermark = self.watermark.max(ts_col[last]);
        let dense = match self.intake_mode {
            // Kernels pay O(batch) per evaluated column; worth it when the
            // selection covers at least a quarter of the batch.
            IntakeMode::Auto => input.is_none_or(|rows| rows.len() * 4 >= n),
            IntakeMode::Kernel => true,
            IntakeMode::Rows => false,
        };
        if dense {
            self.route_columns_kernel(batch, input, shared);
        } else {
            self.route_columns_rows(batch, input);
        }
    }

    /// Kernel intake: bitmap evaluation per distinct predicate, AND per
    /// class, union popcount for `events_admitted`, set-bit materialization.
    /// Produces exactly the per-event path's admissions in the same
    /// class-then-row order.
    fn route_columns_kernel(
        &mut self,
        batch: &EventBatch,
        input: Option<&[u32]>,
        mut shared: Option<&mut SharedPredIndex>,
    ) {
        let n = batch.len();
        let n_input = input.map_or(n, <[u32]>::len);
        let batch_schema = batch.schema().name_sym();
        let (mut rows_evaluated, mut fallback_rows) = (0u64, 0u64);
        // Disjoint field borrows: predicates + scratch stay borrowed across
        // the loop while `plan`/counters are touched independently.
        let scratch = &mut self.scratch;
        let intake_compiled = &self.intake_compiled;
        let uniq_preds = &self.uniq_preds;
        let col_pred_of = &self.col_pred_of;
        let shared_slots = self.shared_slots.as_deref();
        scratch.pred_done.iter_mut().for_each(|d| *d = false);
        scratch.union.reset(n, false);
        for c in 0..self.aq.num_classes() {
            if self.class_schema[c] != batch_schema {
                continue;
            }
            self.offered[c] += n_input as u64;
            match input {
                None => scratch.acc.reset(n, true),
                Some(rows) => {
                    scratch.acc.reset(n, false);
                    scratch.acc.set_rows(rows);
                }
            }
            for (pi, pred) in intake_compiled[c].iter().enumerate() {
                if !scratch.acc.any() {
                    break;
                }
                match col_pred_of[c][pi] {
                    // With a shared index, the bitmap may already be valid
                    // from *another* engine's evaluation of an identical
                    // predicate this batch; whoever evaluates pays the
                    // rows-evaluated accounting once.
                    Some(u) => match (shared.as_deref_mut(), shared_slots) {
                        (Some(index), Some(slots)) => {
                            let (bitmap, evaluated) =
                                index.bitmap_for(slots[u], &uniq_preds[u], batch);
                            if evaluated {
                                rows_evaluated += n as u64;
                            }
                            scratch.acc.and(bitmap);
                        }
                        _ => {
                            if !scratch.pred_done[u] {
                                uniq_preds[u].eval_column(batch, &mut scratch.pred[u]);
                                scratch.pred_done[u] = true;
                                rows_evaluated += n as u64;
                            }
                            scratch.acc.and(&scratch.pred[u]);
                        }
                    },
                    None => {
                        // General predicates stay row-wise, over surviving
                        // rows only.
                        fallback_rows += scratch.acc.count() as u64;
                        scratch.acc.retain(|row| pred.passes(batch, row, c));
                    }
                }
            }
            let admitted = scratch.acc.count() as u64;
            self.admitted[c] += admitted;
            scratch.union.or(&scratch.acc);
            let leaf = self.plan.leaf_of_class[c];
            for row in scratch.acc.ones() {
                self.plan.nodes[leaf].buf.push(Record::primitive(batch.event(row)));
            }
        }
        let admitted_delta = scratch.union.count() as u64;
        self.metrics.events_admitted += admitted_delta;
        if let Some(obs) = &self.obs {
            obs.admitted.add(admitted_delta);
            obs.kernel_rows_evaluated.add(rows_evaluated);
            obs.kernel_fallback_rows.add(fallback_rows);
        }
    }

    /// Row-at-a-time intake for sparse selections: narrows a `Vec<u32>`
    /// selection per class (no O(batch) scratch), then unions admissions
    /// via bitmap OR + popcount.
    fn route_columns_rows(&mut self, batch: &EventBatch, input: Option<&[u32]>) {
        let n = batch.len();
        let n_input = input.map_or(n, <[u32]>::len);
        let batch_schema = batch.schema().name_sym();
        // Phase 1: per matched class, narrow the input to its final
        // selection (`None` = the whole input survived every predicate).
        let mut class_sels: Vec<(usize, Option<Vec<u32>>)> = Vec::new();
        for c in 0..self.aq.num_classes() {
            if self.class_schema[c] != batch_schema {
                continue;
            }
            self.offered[c] += n_input as u64;
            let mut sel: Option<Vec<u32>> = None;
            for pred in &self.intake_compiled[c] {
                match (&mut sel, input) {
                    (Some(rows), _) => rows.retain(|r| pred.passes(batch, *r as usize, c)),
                    (None, None) => {
                        sel = Some(
                            (0..n as u32).filter(|r| pred.passes(batch, *r as usize, c)).collect(),
                        );
                    }
                    (None, Some(rows)) => {
                        sel = Some(
                            rows.iter()
                                .copied()
                                .filter(|r| pred.passes(batch, *r as usize, c))
                                .collect(),
                        );
                    }
                }
                if matches!(&sel, Some(rows) if rows.is_empty()) {
                    break;
                }
            }
            class_sels.push((c, sel));
        }
        // `events_admitted` counts input rows admitted into at least one
        // class: the whole input if any class kept everything, otherwise
        // the popcount of the OR of the per-class selections.
        let admitted_delta = if class_sels.iter().any(|(_, sel)| sel.is_none()) {
            n_input as u64
        } else {
            match class_sels.as_slice() {
                [] => 0,
                [(_, Some(rows))] => rows.len() as u64,
                many => {
                    let union = &mut self.scratch.union;
                    union.reset(n, false);
                    for (_, sel) in many {
                        union.set_rows(sel.as_deref().unwrap_or(&[]));
                    }
                    union.count() as u64
                }
            }
        };
        self.metrics.events_admitted += admitted_delta;
        if let Some(obs) = &self.obs {
            obs.admitted.add(admitted_delta);
            obs.kernel_fallback_rows.add(n_input as u64);
        }
        // Phase 2: materialize leaf records for the surviving rows, in the
        // same class-then-row order as the per-event path fills buffers.
        for (c, sel) in class_sels {
            let leaf = self.plan.leaf_of_class[c];
            let admit = |row: usize, this: &mut PhysicalPlan| {
                this.nodes[leaf].buf.push(Record::primitive(batch.event(row)));
            };
            match (sel, input) {
                (None, None) => {
                    self.admitted[c] += n as u64;
                    for row in 0..n {
                        admit(row, &mut self.plan);
                    }
                }
                (None, Some(rows)) => {
                    self.admitted[c] += rows.len() as u64;
                    for row in rows {
                        admit(*row as usize, &mut self.plan);
                    }
                }
                (Some(rows), _) => {
                    self.admitted[c] += rows.len() as u64;
                    for row in rows {
                        admit(row as usize, &mut self.plan);
                    }
                }
            }
        }
    }

    /// Routes one event to every class whose schema matches and whose
    /// intake predicates accept it (§4.1: single-class predicates prevent
    /// irrelevant events from entering leaf buffers).
    fn route(&mut self, event: &EventRef) {
        self.metrics.events_in += 1;
        debug_assert!(event.ts() >= self.watermark, "input must be time-ordered");
        self.watermark = self.watermark.max(event.ts());
        let mut admitted_any = false;
        let event_schema = event.schema().name_sym();
        for c in 0..self.aq.num_classes() {
            if self.class_schema[c] != event_schema {
                continue;
            }
            self.offered[c] += 1;
            let binding = OneClassBinding { class: c, event };
            if self.intake[c]
                .iter()
                .all(|p| matches!(p.eval(&binding), Ok(zstream_events::Value::Bool(true))))
            {
                self.admitted[c] += 1;
                admitted_any = true;
                let leaf = self.plan.leaf_of_class[c];
                self.plan.nodes[leaf].buf.push(Record::primitive(event.clone()));
            }
        }
        if admitted_any {
            self.metrics.events_admitted += 1;
        }
        if let Some(obs) = &self.obs {
            if admitted_any {
                obs.admitted.inc();
            }
            obs.kernel_fallback_rows.inc();
        }
    }

    /// One round: idle if no trigger instance is waiting, otherwise compute
    /// the EAT and assemble.
    fn round(&mut self) -> Vec<Record> {
        let Some(earliest) = self.earliest_trigger_end() else {
            self.metrics.idle_rounds += 1;
            return Vec::new();
        };
        let eat = earliest.saturating_sub(self.plan.window);
        self.metrics.assembly_rounds += 1;
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let out = self.plan.assemble(eat);
        self.metrics.matches_out += out.len() as u64;
        self.metrics.sample_memory(self.plan.total_bytes());
        if let (Some(obs), Some(start)) = (&self.obs, start) {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            obs.record_round(self.watermark, ns, out.len() as u64);
        }
        out
    }

    /// Earliest unconsumed end timestamp across trigger-class leaf buffers
    /// (the EAT base of §4.3).
    fn earliest_trigger_end(&self) -> Option<Ts> {
        self.plan
            .trigger_classes
            .iter()
            .filter_map(|c| {
                self.plan.nodes[self.plan.leaf_of_class[*c]].buf.earliest_unconsumed_end()
            })
            .min()
    }

    /// Canonical signature of an output record for result comparison: per
    /// pattern class, the identities (Arc pointers) of the bound events.
    /// Unbound classes yield empty lists; negated classes are always empty
    /// (NSEQ carries the negating event in its slot for guard evaluation,
    /// but it is bookkeeping, not part of the match — RETURN excludes it).
    pub fn record_signature(&self, rec: &Record) -> Vec<Vec<usize>> {
        let root = &self.plan.nodes[self.plan.root];
        let mut out = vec![Vec::new(); self.aq.num_classes()];
        for (slot_idx, class) in root.classes.iter().enumerate() {
            if self.aq.classes[*class].negated {
                continue;
            }
            out[*class] =
                rec.slot(slot_idx).events().iter().map(|e| e.identity() as usize).collect();
        }
        out
    }

    /// Formats an output record according to the query's RETURN clause.
    pub fn format_match(&self, rec: &Record) -> String {
        use std::fmt::Write;
        use zstream_lang::TypedReturn;
        let root = &self.plan.nodes[self.plan.root];
        let binding = crate::physical::binding::RecordBinding { rec, map: &root.map };
        let mut s = format!("[{}..{}]", rec.start_ts(), rec.end_ts());
        for r in &self.aq.returns {
            match r {
                TypedReturn::Class(c) => {
                    let ev = root
                        .map
                        .slot_of(*c)
                        .map(|p| rec.slot(p))
                        .map(|slot| match slot.events() {
                            [] => "—".to_string(),
                            [e] => e.to_string(),
                            group => format!("{} events", group.len()),
                        })
                        .unwrap_or_else(|| "—".to_string());
                    let _ = write!(s, " {}={}", self.aq.classes[*c].name, ev);
                }
                TypedReturn::Agg(func, c, field) => {
                    let expr = TypedExpr::Agg { func: *func, class: *c, field: *field };
                    let v = expr
                        .eval(&binding)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|_| "?".to_string());
                    let _ = write!(s, " {func}({})={v}", self.aq.classes[*c].name);
                }
            }
        }
        s
    }

    /// Replaces the physical plan, transplanting leaf buffers. Trigger-class
    /// cursors are preserved (already-consumed final events must not emit
    /// again); every other leaf is rewound so the new plan rebuilds its
    /// intermediate state from retained history — the §5.3 switch protocol.
    pub fn install_plan(&mut self, mut new_plan: PhysicalPlan) {
        let mut leaves = self.plan.take_leaf_buffers();
        for (class, buf) in &mut leaves {
            if !self.plan.trigger_classes.contains(class) {
                buf.rewind();
            }
        }
        new_plan.reset_for_switch(leaves);
        self.plan = new_plan;
        self.metrics.plan_switches += 1;
    }

    /// Rebuilds an engine from a [`Snapshot`] stream. `aq`, `plan` and
    /// `intake` must come from compiling the same query with the same plan
    /// configuration the snapshotted engine ran (checkpoints carry state,
    /// not code — the caller re-derives the plan and this injects the
    /// buffers, cursors, watermark and counters into it). Hash indexes are
    /// *not* snapshotted: they are derived state and re-sync incrementally
    /// from the restored buffers on the next probe.
    pub fn restore_snapshot(
        aq: Arc<AnalyzedQuery>,
        plan: PhysicalPlan,
        intake: Vec<Vec<TypedExpr>>,
        batch_size: usize,
        r: &mut SnapshotReader<'_>,
    ) -> SnapshotResult<Engine> {
        let mut engine = Engine::new(aq, plan, intake, batch_size);
        engine.watermark = r.u64()?;
        engine.metrics = EngineMetrics::restore_snapshot(r)?;
        let n_classes = engine.aq.num_classes();
        let read_counters = |r: &mut SnapshotReader<'_>| -> SnapshotResult<Vec<u64>> {
            let n = r.len()?;
            if n != n_classes {
                return Err(SnapshotError::Corrupt(format!(
                    "class counter arity {n} does not match query ({n_classes} classes)"
                )));
            }
            (0..n).map(|_| r.u64()).collect()
        };
        engine.offered = read_counters(r)?;
        engine.admitted = read_counters(r)?;
        let n_pending = r.len()?;
        engine.pending = (0..n_pending).map(|_| r.event()).collect::<SnapshotResult<_>>()?;
        let n_nodes = r.len()?;
        if n_nodes != engine.plan.nodes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n_nodes} plan nodes, compiled plan has {}",
                engine.plan.nodes.len()
            )));
        }
        for node in &mut engine.plan.nodes {
            let n_recs = r.len()?;
            for _ in 0..n_recs {
                node.buf.push(r.record()?);
            }
            let consumed = usize::try_from(r.u64()?)
                .map_err(|_| SnapshotError::Corrupt("consumed cursor exceeds usize".into()))?;
            if consumed > node.buf.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "consumed cursor {consumed} past buffer length {}",
                    node.buf.len()
                )));
            }
            node.buf.set_consumed(consumed);
        }
        Ok(engine)
    }
}

impl Snapshot for Engine {
    /// Serializes the evolving state: watermark, metrics, per-class intake
    /// counters, events pending a full batch, and every node buffer with
    /// its consumed cursor. The query, plan shape and intake predicates are
    /// **not** written — [`Engine::restore_snapshot`] re-derives them from
    /// the compiled query, which also makes the snapshot independent of
    /// process-local symbol ids and compiled-predicate layout.
    fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.u64(self.watermark);
        self.metrics.write_snapshot(w);
        w.len(self.offered.len());
        for &c in &self.offered {
            w.u64(c);
        }
        w.len(self.admitted.len());
        for &c in &self.admitted {
            w.u64(c);
        }
        w.len(self.pending.len());
        for e in &self.pending {
            w.event(e);
        }
        w.len(self.plan.nodes.len());
        for node in &self.plan.nodes {
            w.len(node.buf.len());
            for rec in node.buf.iter() {
                w.record(rec);
            }
            w.len(node.buf.consumed());
        }
    }
}
