//! Synthetic web-access log (§6.5 substitution).
//!
//! The paper's experiment uses one month (22 Feb – 22 Mar 2009) of MIT DB
//! group web-server logs: more than 1.5 million records with schema
//! `(Time, IP, Access-URL, Description)`, of which 6 775 touch publications,
//! 11 610 projects and 16 083 courses (Table 4). That trace is not publicly
//! available, so this generator reproduces the statistics that drive the
//! experiment's outcome: the same class frequencies (scaled), Zipf-skewed IP
//! popularity (web traffic is heavily skewed), and uniform arrivals over a
//! month of seconds. Query 8's behavior depends exactly on these — the
//! relative rarity of publication accesses and the per-IP equality — so the
//! substitution preserves the plan comparison of Figure 17.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use zstream_events::{EventBatch, EventRef, Schema, Ts, Value};

use crate::disorder::DisorderSpec;
use crate::zipf::Zipf;

/// Paper's Table 4: accesses per category in 1.5 M records.
const PAPER_TOTAL: u64 = 1_500_000;
const PAPER_PUBLICATION: u64 = 6_775;
const PAPER_PROJECT: u64 = 11_610;
const PAPER_COURSE: u64 = 16_083;
/// One month in seconds (the paper's 22 Feb – 22 Mar window).
const MONTH_SECS: u64 = 28 * 24 * 3600;

/// Configuration of the synthetic web log.
#[derive(Debug, Clone)]
pub struct WeblogConfig {
    /// Total records (paper: 1 500 000; scale down for tests).
    pub total: u64,
    /// Distinct client IPs.
    pub num_ips: usize,
    /// Zipf exponent of IP popularity.
    pub ip_skew: f64,
    /// RNG seed.
    pub seed: u64,
    /// Arrival-order disorder applied to the generated log (default `None`
    /// — time-ordered output). See [`DisorderSpec`].
    pub disorder: Option<DisorderSpec>,
}

impl Default for WeblogConfig {
    fn default() -> Self {
        WeblogConfig {
            total: PAPER_TOTAL,
            num_ips: 20_000,
            ip_skew: 1.1,
            seed: 2009,
            disorder: None,
        }
    }
}

impl WeblogConfig {
    /// A configuration scaled to `total` records, keeping Table 4's class
    /// frequencies proportional.
    pub fn scaled(total: u64, seed: u64) -> WeblogConfig {
        WeblogConfig {
            total,
            num_ips: ((total / 75).max(10)) as usize,
            ip_skew: 1.1,
            seed,
            disorder: None,
        }
    }

    /// Emits the log in disordered **arrival order** (see [`DisorderSpec`]);
    /// batches from [`WeblogGenerator::generate_batches`] then carry
    /// unsorted rows.
    pub fn disordered(mut self, spec: DisorderSpec) -> WeblogConfig {
        self.disorder = Some(spec);
        self
    }
}

/// Category counts of a generated log (reproduces Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeblogStats {
    /// Total records generated.
    pub total: u64,
    /// Records accessing publications.
    pub publication: u64,
    /// Records accessing projects.
    pub project: u64,
    /// Records accessing courses.
    pub course: u64,
    /// Everything else.
    pub other: u64,
}

/// Deterministic synthetic web-log generator.
#[derive(Debug)]
pub struct WeblogGenerator;

impl WeblogGenerator {
    /// Generates the log (time-ordered) together with its category counts.
    /// Events are handles into shared columnar batches.
    pub fn generate(config: &WeblogConfig) -> (Vec<EventRef>, WeblogStats) {
        let batch_size = (config.total as usize).max(1);
        let (batches, stats) = Self::generate_batches(config, batch_size);
        (batches.iter().flat_map(EventBatch::iter).collect(), stats)
    }

    /// Generates the log directly as struct-of-arrays [`EventBatch`]es of
    /// `batch_size` rows (the last batch may be shorter). Row values are
    /// identical to [`WeblogGenerator::generate`] for the same config.
    pub fn generate_batches(
        config: &WeblogConfig,
        batch_size: usize,
    ) -> (Vec<EventBatch>, WeblogStats) {
        assert!(batch_size >= 1, "batch size must be at least 1");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zipf = Zipf::new(config.num_ips, config.ip_skew);
        let schema = Schema::weblog();

        // Scale Table 4's category frequencies to the requested total.
        let scale = config.total as f64 / PAPER_TOTAL as f64;
        let n_pub = (PAPER_PUBLICATION as f64 * scale).round() as u64;
        let n_proj = (PAPER_PROJECT as f64 * scale).round() as u64;
        let n_course = (PAPER_COURSE as f64 * scale).round() as u64;

        // Arrival timestamps: uniform over the month, sorted.
        let mut timestamps: Vec<Ts> =
            (0..config.total).map(|_| rng.random_range(0..MONTH_SECS)).collect();
        timestamps.sort_unstable();

        // Category assignment: shuffle category codes across positions.
        let mut cats: Vec<u8> = Vec::with_capacity(config.total as usize);
        cats.extend(std::iter::repeat_n(1u8, n_pub as usize));
        cats.extend(std::iter::repeat_n(2u8, n_proj as usize));
        cats.extend(std::iter::repeat_n(3u8, n_course as usize));
        cats.resize(config.total as usize, 0u8);
        // Fisher-Yates shuffle.
        for i in (1..cats.len()).rev() {
            let j = rng.random_range(0..=i);
            cats.swap(i, j);
        }

        let category_syms = [
            Value::str("Other"),
            Value::str("Publication"),
            Value::str("Project"),
            Value::str("Course"),
        ];
        let mut stats =
            WeblogStats { total: config.total, publication: 0, project: 0, course: 0, other: 0 };
        let total = config.total as usize;
        let mut batches = Vec::with_capacity(total.div_ceil(batch_size));
        let mut builder = EventBatch::builder(schema.clone(), batch_size.min(total.max(1)));
        for (row, (ts, cat)) in timestamps.into_iter().zip(cats).enumerate() {
            let ip_rank = zipf.sample(&mut rng);
            let ip = format!("10.{}.{}.{}", ip_rank >> 16, (ip_rank >> 8) & 255, ip_rank & 255);
            let url = match cat {
                1 => {
                    stats.publication += 1;
                    format!("/papers/p{}.pdf", rng.random_range(0..500))
                }
                2 => {
                    stats.project += 1;
                    format!("/projects/{}", rng.random_range(0..40))
                }
                3 => {
                    stats.course += 1;
                    format!("/courses/6.{}", 800 + rng.random_range(0..99))
                }
                _ => {
                    stats.other += 1;
                    format!("/misc/{}", rng.random_range(0..10_000))
                }
            };
            builder
                .push_row(ts, &[Value::str(&ip), Value::str(&url), category_syms[cat as usize]])
                .expect("weblog rows are well-typed");
            if builder.len() == batch_size {
                batches.push(builder.finish());
                let remaining = total - row - 1;
                builder = EventBatch::builder(schema.clone(), batch_size.min(remaining.max(1)));
            }
        }
        if !builder.is_empty() {
            batches.push(builder.finish());
        }
        let batches = match config.disorder {
            Some(spec) => spec.shuffle_batches(&batches, batch_size),
            None => batches,
        };
        (batches, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table4_proportions() {
        let (events, stats) = WeblogGenerator::generate(&WeblogConfig::scaled(150_000, 1));
        assert_eq!(events.len(), 150_000);
        // One-tenth scale of Table 4.
        assert_eq!(stats.publication, 678); // round(6775/10)
        assert_eq!(stats.project, 1161);
        assert_eq!(stats.course, 1608);
        assert_eq!(stats.publication + stats.project + stats.course + stats.other, stats.total);
    }

    #[test]
    fn events_are_time_ordered_over_a_month() {
        let (events, _) = WeblogGenerator::generate(&WeblogConfig::scaled(5_000, 3));
        assert!(events.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        assert!(events.last().unwrap().ts() < MONTH_SECS);
    }

    #[test]
    fn ips_are_skewed() {
        let (events, _) = WeblogGenerator::generate(&WeblogConfig::scaled(20_000, 5));
        let mut counts = std::collections::HashMap::new();
        for e in &events {
            *counts
                .entry(e.value_by_name("ip").unwrap().as_str().unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = events.len() / counts.len();
        assert!(max > 5 * avg, "top IP ({max}) should dominate the average ({avg})");
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = WeblogGenerator::generate(&WeblogConfig::scaled(1_000, 9));
        let (b, _) = WeblogGenerator::generate(&WeblogConfig::scaled(1_000, 9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_string(), y.to_string());
        }
    }

    #[test]
    fn batches_match_flat_generation() {
        let cfg = WeblogConfig::scaled(1_000, 11);
        let (flat, flat_stats) = WeblogGenerator::generate(&cfg);
        let (batches, batch_stats) = WeblogGenerator::generate_batches(&cfg, 128);
        assert_eq!(flat_stats, batch_stats);
        assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), flat.len());
        let rebuilt: Vec<String> =
            batches.iter().flat_map(|b| b.iter()).map(|e| e.to_string()).collect();
        let flat_strs: Vec<String> = flat.iter().map(|e| e.to_string()).collect();
        assert_eq!(rebuilt, flat_strs);
    }
}
