//! A Zipf-distributed integer sampler (inverse-CDF over precomputed
//! cumulative weights), used for web-log IP addresses.

use rand::{Rng, RngExt};

/// Zipf distribution over `0..n` with exponent `s`: rank `k` has weight
/// `1/(k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.random();
        self.cumulative.partition_point(|c| *c < x).min(self.cumulative.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (`n >= 1` is enforced).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 of Zipf(1.0) over 100 ranks carries ~1/H_100 ≈ 19%.
        let frac = counts[0] as f64 / 20_000.0;
        assert!((frac - 0.19).abs() < 0.03, "rank-0 fraction {frac}");
    }

    #[test]
    fn single_rank_degenerates() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
