//! Synthetic workloads reproducing the ZStream evaluation (§6).
//!
//! * [`StockGenerator`] — synthetic stock trades "generated so that event
//!   rates and the selectivity of multi-class predicates could be
//!   controlled" (§6): per-name relative rates and uniform prices whose
//!   comparison selectivity is analytic ([`price_factor_for_selectivity`]),
//! * [`WeblogGenerator`] — a synthetic web-access log reproducing the shape
//!   of the paper's real MIT DB-group trace (Table 4 class frequencies,
//!   Zipf-distributed IPs, one month of arrivals) — the substitution for the
//!   proprietary data set, documented in `DESIGN.md`,
//! * [`Zipf`] — the skewed sampler used for IP addresses,
//! * [`DisorderSpec`] — an arrival-order disorder model (bounded delivery
//!   delays plus an optional straggler fraction) applicable to both
//!   generators, driving the §4.1 reorder stage and its lateness policies.

mod disorder;
mod stock;
mod weblog;
mod zipf;

pub use disorder::DisorderSpec;
pub use stock::{price_factor_for_selectivity, StockConfig, StockGenerator};
pub use weblog::{WeblogConfig, WeblogGenerator, WeblogStats};
pub use zipf::Zipf;
