//! Synthetic stock-trade streams (§6: "We generate synthetic stock events so
//! that event rates and the selectivity of multi-class predicates could be
//! controlled").
//!
//! * **Rates** — each event picks its stock name from a weighted
//!   distribution; with one logical time unit per event, a class's rate is
//!   its weight fraction (so `1:100:100:100` reproduces the paper's skewed
//!   regimes exactly in expectation).
//! * **Selectivity** — prices are uniform on `[0, 100)`; for independent
//!   uniform prices the predicate `A.price > f · B.price` has analytic
//!   selectivity `1/(2f)` for `f ≥ 1` and `1 − f/2` for `f ≤ 1`, so any
//!   target selectivity in `(0, 1]` maps to a factor via
//!   [`price_factor_for_selectivity`].

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use zstream_events::{Event, EventBatch, EventRef, Schema, Sym, Ts, Value};

use crate::disorder::DisorderSpec;

/// Configuration of a synthetic stock stream.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Stock names with their relative rate weights.
    pub names: Vec<(String, f64)>,
    /// Total number of events to generate.
    pub len: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Timestamp increment per event (default 1 — one event per time unit).
    pub ts_step: Ts,
    /// Per-name price scale (aligned with `names`, default 1.0). Scaling a
    /// name's prices by `s` changes the effective selectivity of a
    /// fixed-factor comparison `A.price > f · B.price` to that of factor
    /// `f·s` — how the evaluation varies predicate selectivity without
    /// changing the query (§6.2, Figure 12/14 regimes).
    pub price_scales: Vec<f64>,
    /// Arrival-order disorder applied to the generated stream (default
    /// `None` — perfectly time-ordered output). See [`DisorderSpec`].
    pub disorder: Option<DisorderSpec>,
}

impl StockConfig {
    /// Uniform rates over `names` (the paper's `1:1:1` default).
    pub fn uniform(names: &[&str], len: usize, seed: u64) -> StockConfig {
        StockConfig {
            names: names.iter().map(|n| (n.to_string(), 1.0)).collect(),
            len,
            seed,
            ts_step: 1,
            price_scales: vec![1.0; names.len()],
            disorder: None,
        }
    }

    /// Explicit relative rates, e.g. `[("IBM", 1.0), ("Sun", 100.0), …]`.
    pub fn with_rates(names: &[(&str, f64)], len: usize, seed: u64) -> StockConfig {
        StockConfig {
            names: names.iter().map(|(n, w)| (n.to_string(), *w)).collect(),
            len,
            seed,
            ts_step: 1,
            price_scales: vec![1.0; names.len()],
            disorder: None,
        }
    }

    /// Emits the stream in disordered **arrival order** (see
    /// [`DisorderSpec`]); batches from
    /// [`StockGenerator::generate_batches`] then carry unsorted rows.
    pub fn disordered(mut self, spec: DisorderSpec) -> StockConfig {
        self.disorder = Some(spec);
        self
    }

    /// Sets one name's price scale (see `price_scales`).
    pub fn price_scale(mut self, name: &str, scale: f64) -> StockConfig {
        let idx = self
            .names
            .iter()
            .position(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("unknown name '{name}'"));
        self.price_scales[idx] = scale;
        self
    }

    /// The expected per-time-unit rate of one name (its weight fraction
    /// divided by the timestamp step) — feeds the optimizer's statistics.
    pub fn expected_rate(&self, name: &str) -> f64 {
        let total: f64 = self.names.iter().map(|(_, w)| w).sum();
        let w = self.names.iter().find(|(n, _)| n == name).map(|(_, w)| *w).unwrap_or(0.0);
        w / total / self.ts_step as f64
    }
}

/// Price-comparison factor achieving a target selectivity for
/// `A.price > f · B.price` over independent uniform prices.
///
/// For `s ≤ 1/2`, `f = 1/(2s)`; for `s ≥ 1/2`, `f = 2(1 − s)`; `s = 1`
/// degenerates to `f = 0` (always true for positive prices).
pub fn price_factor_for_selectivity(s: f64) -> f64 {
    assert!(s > 0.0 && s <= 1.0, "selectivity must be in (0, 1], got {s}");
    if s <= 0.5 {
        1.0 / (2.0 * s)
    } else {
        2.0 * (1.0 - s)
    }
}

/// Deterministic stock-trade generator.
#[derive(Debug)]
pub struct StockGenerator {
    config: StockConfig,
    rng: StdRng,
    cumulative: Vec<f64>,
    next_id: i64,
    ts: Ts,
    produced: usize,
}

impl StockGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: StockConfig) -> StockGenerator {
        assert!(!config.names.is_empty());
        let total: f64 = config.names.iter().map(|(_, w)| w).sum();
        let mut acc = 0.0;
        let cumulative = config
            .names
            .iter()
            .map(|(_, w)| {
                acc += w / total;
                acc
            })
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        StockGenerator { config, rng, cumulative, next_id: 0, ts: 0, produced: 0 }
    }

    /// Generates the whole stream eagerly as handles into shared columnar
    /// batches — no per-event allocation.
    pub fn generate(config: StockConfig) -> Vec<EventRef> {
        let len = config.len.max(1);
        StockGenerator::generate_batches(config, len).iter().flat_map(EventBatch::iter).collect()
    }

    /// Generates the stream directly as struct-of-arrays [`EventBatch`]es of
    /// `batch_size` rows (the last batch may be shorter). The row values are
    /// identical to [`StockGenerator::generate`] for the same config — the
    /// two only differ in batch boundaries. With
    /// [`StockConfig::disordered`] set, rows are emitted in the spec's
    /// arrival order instead of time order (batches may be unsorted).
    pub fn generate_batches(config: StockConfig, batch_size: usize) -> Vec<EventBatch> {
        assert!(batch_size >= 1, "batch size must be at least 1");
        let disorder = config.disorder;
        let mut g = StockGenerator::new(config);
        // Intern each name once; every generated row reuses the symbol.
        let name_syms: Vec<Sym> = g.config.names.iter().map(|(n, _)| Sym::intern(n)).collect();
        let schema = Schema::stocks();
        let mut out = Vec::with_capacity(g.config.len.div_ceil(batch_size));
        let mut builder = EventBatch::builder(schema.clone(), batch_size.min(g.config.len));
        while let Some(row) = g.next_row() {
            builder
                .push_row(
                    row.ts,
                    &[
                        Value::Int(row.id),
                        Value::Str(name_syms[row.name_idx]),
                        Value::Float(row.price),
                        Value::Int(row.volume),
                    ],
                )
                .expect("stock rows are well-typed");
            if builder.len() == batch_size {
                out.push(builder.finish());
                let remaining = g.config.len - g.produced;
                builder = EventBatch::builder(schema.clone(), batch_size.min(remaining.max(1)));
            }
        }
        if !builder.is_empty() {
            out.push(builder.finish());
        }
        match disorder {
            Some(spec) => spec.shuffle_batches(&out, batch_size),
            None => out,
        }
    }

    /// Draws the next row's raw values (shared by the streaming and the
    /// columnar construction paths; the RNG call order defines the stream).
    fn next_row(&mut self) -> Option<StockRow> {
        if self.produced >= self.config.len {
            return None;
        }
        self.produced += 1;
        self.ts += self.config.ts_step;
        let x: f64 = self.rng.random();
        let name_idx = self.cumulative.partition_point(|c| *c < x).min(self.config.names.len() - 1);
        let price = self.rng.random::<f64>() * 100.0 * self.config.price_scales[name_idx];
        let volume: i64 = self.rng.random_range(1..1000);
        let id = self.next_id;
        self.next_id += 1;
        Some(StockRow { ts: self.ts, id, name_idx, price, volume })
    }

    /// The next event, or `None` when `len` events were produced. Builds a
    /// standalone (single-row-batch) event; prefer
    /// [`StockGenerator::generate_batches`] on high-rate paths.
    pub fn next_event(&mut self) -> Option<EventRef> {
        let row = self.next_row()?;
        let name = &self.config.names[row.name_idx].0;
        Some(
            Event::builder(Schema::stocks(), row.ts)
                .value(row.id)
                .value(name.as_str())
                .value(row.price)
                .value(row.volume)
                .build_ref()
                .expect("stock events are well-typed"),
        )
    }
}

/// One drawn row of the synthetic stock stream.
struct StockRow {
    ts: Ts,
    id: i64,
    name_idx: usize,
    price: f64,
    volume: i64,
}

impl Iterator for StockGenerator {
    type Item = EventRef;

    fn next(&mut self) -> Option<EventRef> {
        self.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length_in_time_order() {
        let events = StockGenerator::generate(StockConfig::uniform(&["IBM", "Sun"], 500, 7));
        assert_eq!(events.len(), 500);
        assert!(events.windows(2).all(|w| w[0].ts() < w[1].ts()));
    }

    #[test]
    fn batches_match_flat_generation() {
        let cfg = StockConfig::uniform(&["IBM", "Sun", "Oracle"], 300, 5);
        let flat = StockGenerator::generate(cfg.clone());
        let batches = StockGenerator::generate_batches(cfg, 64);
        assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), 300);
        assert!(batches[..batches.len() - 1].iter().all(|b| b.len() == 64));
        let rebuilt: Vec<String> =
            batches.iter().flat_map(|b| b.iter()).map(|e| e.to_string()).collect();
        let flat_strs: Vec<String> = flat.iter().map(|e| e.to_string()).collect();
        assert_eq!(rebuilt, flat_strs);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = StockGenerator::generate(StockConfig::uniform(&["IBM", "Sun"], 100, 42));
        let b = StockGenerator::generate(StockConfig::uniform(&["IBM", "Sun"], 100, 42));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_string(), y.to_string());
        }
        let c = StockGenerator::generate(StockConfig::uniform(&["IBM", "Sun"], 100, 43));
        assert!(a.iter().zip(&c).any(|(x, y)| x.to_string() != y.to_string()));
    }

    #[test]
    fn rates_follow_weights() {
        let cfg = StockConfig::with_rates(&[("IBM", 1.0), ("Sun", 9.0)], 20_000, 1);
        assert!((cfg.expected_rate("IBM") - 0.1).abs() < 1e-12);
        let events = StockGenerator::generate(cfg);
        let ibm = events
            .iter()
            .filter(|e| e.value_by_name("name").unwrap().as_str().unwrap() == "IBM")
            .count();
        let frac = ibm as f64 / events.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "IBM fraction {frac} should be ~0.1");
    }

    #[test]
    fn price_factor_mapping_is_analytic() {
        // Monte-Carlo check of the analytic selectivity formula.
        let events = StockGenerator::generate(StockConfig::uniform(&["A"], 20_000, 3));
        for target in [0.5, 0.25, 1.0 / 32.0, 0.75] {
            let f = price_factor_for_selectivity(target);
            let mut hits = 0usize;
            let mut total = 0usize;
            for pair in events.chunks_exact(2) {
                let pa = pair[0].value_by_name("price").unwrap().as_f64().unwrap();
                let pb = pair[1].value_by_name("price").unwrap().as_f64().unwrap();
                total += 1;
                if pa > f * pb {
                    hits += 1;
                }
            }
            let measured = hits as f64 / total as f64;
            assert!(
                (measured - target).abs() < 0.02,
                "target {target}: measured {measured} with factor {f}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "selectivity must be in (0, 1]")]
    fn zero_selectivity_rejected() {
        price_factor_for_selectivity(0.0);
    }
}
