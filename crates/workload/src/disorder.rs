//! Disorder model for workload streams.
//!
//! Real traffic never arrives perfectly time-ordered (the paper's §4.1
//! prescribes a reordering operator exactly because of this). This module
//! turns any generated time-ordered stream into a realistic **arrival
//! order**: each event draws a delivery delay, and events are emitted in
//! order of `event time + delay`. Two properties make the model useful for
//! differential testing:
//!
//! * With `late_fraction = 0`, disorder is **bounded**: at any arrival
//!   position, the event's timestamp is at most `max_delay` behind the
//!   largest timestamp already arrived (proof: if `a` overtakes `b` with
//!   `ts_b > ts_a`, then `ts_a + d_a ≥ ts_b + d_b`, so
//!   `ts_b − ts_a ≤ d_a ≤ max_delay`). A reorder stage with
//!   `slack ≥ max_delay` therefore rejects **nothing** and reproduces the
//!   sorted stream exactly.
//! * With `late_fraction > 0`, the chosen fraction of events additionally
//!   draws a delay beyond `max_delay` — straggler traffic that a
//!   `slack = max_delay` reorder stage may reject, driving the lateness
//!   policies.
//!
//! Shuffling is deterministic per seed and preserves the multiset of
//! events — only arrival positions change. Ties in arrival key keep event
//! order (stable sort), so `max_delay = 0, late_fraction = 0` is the
//! identity.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use zstream_events::{EventBatch, EventRef, Ts};

/// How a generated stream's arrival order deviates from time order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisorderSpec {
    /// Maximum delivery delay of ordinary events: bounds the disorder
    /// (arrival lag behind the running high-water mark never exceeds it).
    pub max_delay: Ts,
    /// Fraction of events (in `[0, 1]`) that additionally draw a delay
    /// beyond `max_delay` — stragglers that arrive *late* for a reorder
    /// stage whose slack equals `max_delay`.
    pub late_fraction: f64,
    /// RNG seed (shuffling is fully deterministic per seed).
    pub seed: u64,
}

impl DisorderSpec {
    /// Bounded disorder only: delays up to `max_delay`, no stragglers.
    pub fn bounded(max_delay: Ts, seed: u64) -> DisorderSpec {
        DisorderSpec { max_delay, late_fraction: 0.0, seed }
    }

    /// Adds straggler traffic: `fraction` of events draw delays beyond
    /// `max_delay`.
    pub fn late_fraction(mut self, fraction: f64) -> DisorderSpec {
        assert!((0.0..=1.0).contains(&fraction), "late fraction must be in [0, 1]");
        self.late_fraction = fraction;
        self
    }

    /// Returns the arrival-order permutation of a time-ordered stream.
    pub fn shuffle_events(&self, events: &[EventRef]) -> Vec<EventRef> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut keyed: Vec<(Ts, usize)> = events
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let delay =
                    if self.max_delay == 0 { 0 } else { rng.random_range(0..=self.max_delay) };
                let straggle =
                    if self.late_fraction > 0.0 && rng.random::<f64>() < self.late_fraction {
                        // Strictly beyond max_delay, spread over a few multiples
                        // so stragglers are not all equally late.
                        let beyond = self.max_delay.saturating_mul(3).max(8);
                        rng.random_range(1..=beyond).saturating_add(self.max_delay)
                    } else {
                        0
                    };
                (e.ts().saturating_add(delay).saturating_add(straggle), i)
            })
            .collect();
        // Stable by construction: ties on the arrival key keep stream order
        // because the original index is the secondary key.
        keyed.sort_by_key(|&(arrival, i)| (arrival, i));
        keyed.into_iter().map(|(_, i)| events[i].clone()).collect()
    }

    /// Shuffles the rows of time-ordered batches into arrival order,
    /// re-packed into batches of `batch_size` rows. The resulting batches
    /// generally carry rows **out of timestamp order**
    /// ([`EventBatch::is_sorted`] is false) — exactly what a reorder-staged
    /// runtime ingests.
    pub fn shuffle_batches(&self, batches: &[EventBatch], batch_size: usize) -> Vec<EventBatch> {
        assert!(batch_size >= 1, "batch size must be at least 1");
        let events: Vec<EventRef> = batches.iter().flat_map(EventBatch::iter).collect();
        let arrivals = self.shuffle_events(&events);
        let mut out = Vec::with_capacity(arrivals.len().div_ceil(batch_size));
        for chunk in arrivals.chunks(batch_size) {
            let mut builder = EventBatch::builder(chunk[0].schema().clone(), chunk.len());
            for e in chunk {
                builder.push_event(e).expect("one generator, one schema");
            }
            out.push(builder.finish());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zstream_events::stock;

    fn stream(n: u64) -> Vec<EventRef> {
        (1..=n).map(|t| stock(t, t as i64, "IBM", 1.0, 1)).collect()
    }

    /// Largest lag of an arrival stream behind its running high-water mark.
    fn max_lag(events: &[EventRef]) -> Ts {
        let mut hw: Ts = 0;
        let mut lag: Ts = 0;
        for e in events {
            lag = lag.max(hw.saturating_sub(e.ts()));
            hw = hw.max(e.ts());
        }
        lag
    }

    #[test]
    fn bounded_disorder_never_exceeds_max_delay() {
        let events = stream(500);
        for max_delay in [0u64, 1, 5, 32] {
            let shuffled = DisorderSpec::bounded(max_delay, 7).shuffle_events(&events);
            assert_eq!(shuffled.len(), events.len());
            assert!(
                max_lag(&shuffled) <= max_delay,
                "lag {} exceeds max_delay {max_delay}",
                max_lag(&shuffled)
            );
        }
    }

    #[test]
    fn zero_disorder_is_the_identity() {
        let events = stream(50);
        let shuffled = DisorderSpec::bounded(0, 3).shuffle_events(&events);
        let a: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        let b: Vec<String> = shuffled.iter().map(|e| e.to_string()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_preserves_the_multiset_and_is_deterministic() {
        let events = stream(300);
        let spec = DisorderSpec::bounded(10, 42).late_fraction(0.1);
        let a = spec.shuffle_events(&events);
        let b = spec.shuffle_events(&events);
        let lines = |v: &[EventRef]| v.iter().map(|e| e.to_string()).collect::<Vec<_>>();
        assert_eq!(lines(&a), lines(&b), "same seed, same arrival order");
        let mut sorted_a = lines(&a);
        let mut sorted_orig = lines(&events);
        sorted_a.sort();
        sorted_orig.sort();
        assert_eq!(sorted_a, sorted_orig, "only positions change");
        assert_ne!(lines(&a), lines(&events), "disorder actually happened");
        let c = DisorderSpec::bounded(10, 43).late_fraction(0.1).shuffle_events(&events);
        assert_ne!(lines(&a), lines(&c), "different seed, different arrival order");
    }

    #[test]
    fn stragglers_exceed_the_bound() {
        let events = stream(2000);
        let spec = DisorderSpec::bounded(4, 11).late_fraction(0.2);
        let shuffled = spec.shuffle_events(&events);
        assert!(max_lag(&shuffled) > 4, "late fraction should break the max_delay bound");
    }

    #[test]
    fn shuffled_batches_flatten_to_the_shuffled_stream() {
        let events = stream(200);
        let batch = EventBatch::from_events(&events).unwrap();
        let spec = DisorderSpec::bounded(16, 5);
        let shuffled_batches = spec.shuffle_batches(std::slice::from_ref(&batch), 64);
        assert_eq!(shuffled_batches.iter().map(EventBatch::len).sum::<usize>(), events.len());
        assert!(
            shuffled_batches.iter().any(|b| !b.is_sorted()),
            "arrival-order batches should be unsorted"
        );
        let flat: Vec<String> =
            shuffled_batches.iter().flat_map(|b| b.iter()).map(|e| e.to_string()).collect();
        let direct: Vec<String> =
            spec.shuffle_events(&events).iter().map(|e| e.to_string()).collect();
        assert_eq!(flat, direct);
    }
}
